#include "analysis/mode.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace critics::analysis
{

namespace
{

/** -1 = unresolved, 0 = legacy, 1 = flat. */
std::atomic<int> gFlatAnalyze{-1};

int
fromEnv()
{
    const char *value = std::getenv("CRITICS_FLAT_ANALYZE");
    if (value != nullptr &&
        (std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0)) {
        return 0;
    }
    return 1;
}

} // namespace

bool
flatAnalyzeEnabled()
{
    int state = gFlatAnalyze.load(std::memory_order_relaxed);
    if (state < 0) {
        state = fromEnv();
        int expected = -1;
        // Another thread may have resolved (or overridden) first; its
        // value wins so setFlatAnalyze can never be undone by a racing
        // env read.
        if (!gFlatAnalyze.compare_exchange_strong(
                expected, state, std::memory_order_relaxed)) {
            state = expected;
        }
    }
    return state == 1;
}

void
setFlatAnalyze(bool enabled)
{
    gFlatAnalyze.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

} // namespace critics::analysis
