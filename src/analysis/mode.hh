/**
 * @file
 * Analyze-path selection.  The flat analyze overhaul (DESIGN.md §10)
 * replaced the quadratic chain extraction and the allocation-heavy
 * mining table; `CRITICS_FLAT_ANALYZE=off` selects the pre-overhaul
 * legacy paths, kept for one release as the escape hatch and as the
 * reference side of the CI `analyze-drift` zero-drift gate.
 */

#ifndef CRITICS_ANALYSIS_MODE_HH
#define CRITICS_ANALYSIS_MODE_HH

namespace critics::analysis
{

/** True unless CRITICS_FLAT_ANALYZE=off|0 (or setFlatAnalyze(false)).
 *  Read once and cached; the override below wins over the
 *  environment. */
bool flatAnalyzeEnabled();

/** Force a path (tests and the drift harness toggle both sides inside
 *  one process). */
void setFlatAnalyze(bool enabled);

} // namespace critics::analysis

#endif // CRITICS_ANALYSIS_MODE_HH
