/**
 * @file
 * Snapshot diffing for the regression harness behind `critics_cli
 * diff`.  Two flat stat snapshots (dotted name → value, the shape
 * StatRegistry::snapshot() produces) are merged by name and every
 * metric delta is classified against a noise threshold: a change is a
 * regression only if it exceeds *both* the relative threshold (so
 * large metrics tolerate proportional jitter) and the absolute
 * threshold (so near-zero metrics do not flag on rounding dust).
 *
 * Direction-agnostic on purpose: the harness compares runs that claim
 * to be equivalent (same spec, different checkout), where any
 * significant drift — faster or slower — means the claim is false.
 */

#ifndef CRITICS_STATS_DIFF_HH
#define CRITICS_STATS_DIFF_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace critics::stats
{

struct DiffOptions
{
    double relThreshold = 0.01;  ///< fraction of max(|a|,|b|)
    double absThreshold = 1e-9;  ///< ignore deltas smaller than this
};

struct MetricDelta
{
    std::string name;
    double before = 0.0;
    double after = 0.0;
    double absDelta = 0.0; ///< |after - before|
    double relDelta = 0.0; ///< absDelta / max(|before|, |after|)
    bool regression = false;
};

struct SnapshotDiff
{
    std::vector<MetricDelta> deltas; ///< name order, matched metrics
    std::vector<std::string> onlyBefore;
    std::vector<std::string> onlyAfter;

    std::size_t regressions() const;
    /** Regressions exist, or the two schemas do not even match. */
    bool hasRegressions() const;
    /** Matched deltas sorted by descending relative delta. */
    std::vector<MetricDelta> worst(std::size_t count) const;
};

using Snapshot = std::vector<std::pair<std::string, double>>;

/** Classify one metric pair under `opt`. */
MetricDelta diffMetric(const std::string &name, double before,
                       double after, const DiffOptions &opt);

/** Merge-by-name diff of two flat snapshots (any order). */
SnapshotDiff diffSnapshots(const Snapshot &before, const Snapshot &after,
                           const DiffOptions &opt = {});

} // namespace critics::stats

#endif // CRITICS_STATS_DIFF_HH
