#include "stats/trace_event.hh"

#include <cstdio>
#include <functional>
#include <thread>

#include "support/json.hh"
#include "support/logging.hh"

namespace critics::stats
{

void
TraceEventWriter::push(Event event)
{
    std::lock_guard<std::mutex> guard(lock_);
    // Metadata events always land: they are few and a trace without
    // track names is much harder to read than one missing spans.
    if (event.phase != 'M' && events_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(event));
}

void
TraceEventWriter::complete(const std::string &name,
                           const std::string &category, std::uint64_t ts,
                           std::uint64_t dur, std::uint32_t pid,
                           std::uint32_t tid)
{
    Event e;
    e.phase = 'X';
    e.name = name;
    e.category = category;
    e.ts = ts;
    e.dur = dur;
    e.pid = pid;
    e.tid = tid;
    push(std::move(e));
}

void
TraceEventWriter::complete(const std::string &name,
                           const std::string &category, std::uint64_t ts,
                           std::uint64_t dur, std::uint32_t pid,
                           std::uint32_t tid, const std::string &argName,
                           double argValue)
{
    Event e;
    e.phase = 'X';
    e.name = name;
    e.category = category;
    e.ts = ts;
    e.dur = dur;
    e.pid = pid;
    e.tid = tid;
    e.numArgs.emplace_back(argName, argValue);
    push(std::move(e));
}

void
TraceEventWriter::complete(const std::string &name,
                           const std::string &category, std::uint64_t ts,
                           std::uint64_t dur, std::uint32_t pid,
                           std::uint32_t tid, const std::string &argName,
                           const std::string &argValue)
{
    Event e;
    e.phase = 'X';
    e.name = name;
    e.category = category;
    e.ts = ts;
    e.dur = dur;
    e.pid = pid;
    e.tid = tid;
    e.strArgs.emplace_back(argName, argValue);
    push(std::move(e));
}

void
TraceEventWriter::instant(const std::string &name,
                          const std::string &category, std::uint64_t ts,
                          std::uint32_t pid, std::uint32_t tid)
{
    Event e;
    e.phase = 'i';
    e.name = name;
    e.category = category;
    e.ts = ts;
    e.pid = pid;
    e.tid = tid;
    push(std::move(e));
}

void
TraceEventWriter::counter(const std::string &name, std::uint64_t ts,
                          const std::string &seriesName, double value,
                          std::uint32_t pid)
{
    Event e;
    e.phase = 'C';
    e.name = name;
    e.ts = ts;
    e.pid = pid;
    e.numArgs.emplace_back(seriesName, value);
    push(std::move(e));
}

void
TraceEventWriter::setProcessName(std::uint32_t pid, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "process_name";
    e.pid = pid;
    e.strArgs.emplace_back("name", name);
    push(std::move(e));
}

void
TraceEventWriter::setThreadName(std::uint32_t pid, std::uint32_t tid,
                                const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "thread_name";
    e.pid = pid;
    e.tid = tid;
    e.strArgs.emplace_back("name", name);
    push(std::move(e));
}

std::uint32_t
TraceEventWriter::tidForCurrentThread()
{
    const std::uint64_t key =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    std::lock_guard<std::mutex> guard(lock_);
    for (const auto &[hash, tid] : threadIds_) {
        if (hash == key)
            return tid;
    }
    const auto tid = static_cast<std::uint32_t>(threadIds_.size() + 1);
    threadIds_.emplace_back(key, tid);
    return tid;
}

std::size_t
TraceEventWriter::size() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return events_.size();
}

std::uint64_t
TraceEventWriter::dropped() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return dropped_;
}

std::string
TraceEventWriter::toJson() const
{
    std::lock_guard<std::mutex> guard(lock_);
    json::JsonWriter w;
    w.beginObject();
    w.beginArray("traceEvents");
    for (const auto &e : events_) {
        w.elementObject();
        w.field("name", e.name);
        const char phase[2] = {e.phase, '\0'};
        w.field("ph", phase);
        if (!e.category.empty())
            w.field("cat", e.category);
        w.field("ts", e.ts);
        if (e.phase == 'X')
            w.field("dur", e.dur);
        w.field("pid", e.pid);
        w.field("tid", e.tid);
        if (e.phase == 'i')
            w.field("s", "t");
        if (!e.numArgs.empty() || !e.strArgs.empty()) {
            w.beginObject("args");
            for (const auto &[key, value] : e.numArgs)
                w.fieldReadable(key.c_str(), value);
            for (const auto &[key, value] : e.strArgs)
                w.field(key.c_str(), value);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
    return w.str();
}

bool
TraceEventWriter::writeTo(const std::string &path) const
{
    const std::string doc = toJson();
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        critics_warn("cannot open trace output '", path, "'");
        return false;
    }
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), out) == doc.size();
    std::fclose(out);
    if (!ok)
        critics_warn("short write to trace output '", path, "'");
    return ok;
}

} // namespace critics::stats
