/**
 * @file
 * Hierarchical statistic registry (gem5-style).  Components register
 * typed stats under dotted names — `cpu.fetch.stallForI.icache`,
 * `mem.l1i.misses`, `runner.cache.hits` — and every exporter (the sim
 * JSON report, the interval time-series sampler, the result-diff
 * harness) walks the one registry instead of hand-rolling field lists.
 *
 * Stats are *views*: a registered stat references storage owned by the
 * component (a struct field, a Histogram, a closure over both), so the
 * existing stats structs stay the source of truth and benches remain
 * source-compatible.  The registry itself owns only names, descriptions
 * and accessors; registrants must outlive it.
 *
 * Kinds:
 *   - Counter:      const std::uint64_t&  (exported as an integer)
 *   - Value:        const double&
 *   - Formula:      std::function<double()> — derived stats (IPC, MPKI,
 *                   miss rates) evaluated lazily at export time
 *   - Vector:       a named tuple of counter/value elements under one
 *                   name (e.g. a stage-residency breakdown)
 *   - Distribution: a support/Histogram (count/mean/min/max + buckets)
 *   - Latency:      a support/LatencyHistogram (log-bucketed µs
 *                   distribution exporting count/mean/p50/p90/p99)
 */

#ifndef CRITICS_STATS_REGISTRY_HH
#define CRITICS_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "support/histogram.hh"

namespace critics::json
{
class JsonWriter;
}

namespace critics::stats
{

enum class StatKind : std::uint8_t
{
    Counter,
    Value,
    Formula,
    Vector,
    Distribution,
    Latency,
};

/** One element of a Vector stat. */
struct VectorElem
{
    std::string name;
    const std::uint64_t *counter = nullptr; ///< one of these is set
    const double *value = nullptr;

    double eval() const;
};

/** One registered stat. */
struct StatDef
{
    std::string name; ///< dotted hierarchical name
    std::string desc;
    StatKind kind = StatKind::Counter;

    const std::uint64_t *counter = nullptr;  ///< Counter
    const double *value = nullptr;           ///< Value
    std::function<double()> formula;         ///< Formula
    std::vector<VectorElem> elems;           ///< Vector
    const Histogram *dist = nullptr;         ///< Distribution
    const LatencyHistogram *latency = nullptr; ///< Latency

    /** Scalar reading: Counter/Value/Formula values, the sum of a
     *  Vector's elements, a Distribution's total weight, a Latency
     *  histogram's sample count.  Non-finite formula results clamp to
     *  0 so exports stay valid JSON. */
    double eval() const;
};

class StatRegistry
{
  public:
    // ---- Registration ----------------------------------------------------
    // Names must be unique and non-empty; a leaf may not also be used
    // as a group prefix of another stat (`a.b` + `a.b.c` panics), so
    // the dotted namespace always nests into a well-formed JSON tree.
    void addCounter(const std::string &name, const std::uint64_t &v,
                    std::string desc = "");
    void addValue(const std::string &name, const double &v,
                  std::string desc = "");
    void addFormula(const std::string &name,
                    std::function<double()> formula,
                    std::string desc = "");
    void addVector(const std::string &name, std::vector<VectorElem> elems,
                   std::string desc = "");
    void addDistribution(const std::string &name, const Histogram &h,
                         std::string desc = "");
    void addLatency(const std::string &name, const LatencyHistogram &h,
                    std::string desc = "");

    // ---- Lookup / traversal ----------------------------------------------
    std::size_t size() const { return defs_.size(); }
    bool empty() const { return defs_.empty(); }

    /** Stat by exact dotted name; nullptr when absent. */
    const StatDef *find(const std::string &name) const;

    /** Stats in name order (the canonical export order). */
    void forEach(const std::function<void(const StatDef &)> &fn) const;

    /**
     * Flat numeric snapshot in name order: Counter/Value/Formula as
     * (name, value); Vector elements as name.elem; Distributions as
     * name.count / name.mean / name.min / name.max; Latency histograms
     * as name.count / name.mean / name.p50 / name.p90 / name.p99.
     * This is the surface the interval sampler and the diff harness
     * consume.
     */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /**
     * Append the registry as nested JSON fields of the writer's
     * currently-open object, grouping dotted names into sub-objects.
     * Counters emit as integers, everything else as readable doubles.
     */
    void writeJson(json::JsonWriter &w) const;

    /** The registry as one JSON object. */
    std::string toJson() const;

  private:
    const StatDef &add(StatDef def);
    void sortIfNeeded() const;

    mutable std::vector<StatDef> defs_;
    mutable bool sorted_ = true;
};

} // namespace critics::stats

#endif // CRITICS_STATS_REGISTRY_HH
