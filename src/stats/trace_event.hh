/**
 * @file
 * Chrome trace-event (Trace Event Format) writer.  Producers record
 * complete ("X") spans, instant ("i") markers and counter ("C")
 * samples; the writer serializes them as a `{"traceEvents":[...]}`
 * document loadable by Perfetto / chrome://tracing.
 *
 * Two producers share the format with different clocks:
 *   - the CPU model emits per-instruction stage-residency spans with
 *     `ts` in *cycles* (one simulated cycle == one trace microsecond,
 *     which keeps pipeline diagrams readable at any zoom), and
 *   - the runner emits job/phase spans with `ts` in real microseconds.
 * Both clocks start at 0 for their process track, so the two never
 * appear in the same file.
 *
 * The writer is thread-safe (the runner records from pool workers) and
 * bounds memory with a max-event cap: once full, further events are
 * counted as dropped instead of stored — a truncated trace loads fine,
 * a 10 GB one does not.
 */

#ifndef CRITICS_STATS_TRACE_EVENT_HH
#define CRITICS_STATS_TRACE_EVENT_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace critics::stats
{

class TraceEventWriter
{
  public:
    /** Default cap bounds a trace to roughly 100 MB of JSON. */
    explicit TraceEventWriter(std::size_t maxEvents = 1'000'000)
        : maxEvents_(maxEvents) {}

    /** Complete ("X") span: [ts, ts+dur) on track (pid, tid). */
    void complete(const std::string &name, const std::string &category,
                  std::uint64_t ts, std::uint64_t dur,
                  std::uint32_t pid = 0, std::uint32_t tid = 0);

    /** Complete span with one numeric argument shown on hover. */
    void complete(const std::string &name, const std::string &category,
                  std::uint64_t ts, std::uint64_t dur,
                  std::uint32_t pid, std::uint32_t tid,
                  const std::string &argName, double argValue);

    /** Complete span with one string argument shown on hover (e.g.
     *  the traceId stitched spans belong to). */
    void complete(const std::string &name, const std::string &category,
                  std::uint64_t ts, std::uint64_t dur,
                  std::uint32_t pid, std::uint32_t tid,
                  const std::string &argName,
                  const std::string &argValue);

    /** Instant ("i") marker at `ts`. */
    void instant(const std::string &name, const std::string &category,
                 std::uint64_t ts, std::uint32_t pid = 0,
                 std::uint32_t tid = 0);

    /** Counter ("C") sample: one named series per (name, seriesName). */
    void counter(const std::string &name, std::uint64_t ts,
                 const std::string &seriesName, double value,
                 std::uint32_t pid = 0);

    /** Metadata ("M") events naming tracks in the viewer. */
    void setProcessName(std::uint32_t pid, const std::string &name);
    void setThreadName(std::uint32_t pid, std::uint32_t tid,
                       const std::string &name);

    /** Small dense id for the calling thread (first call assigns). */
    std::uint32_t tidForCurrentThread();

    std::size_t size() const;
    std::uint64_t dropped() const;

    /** The whole trace as one {"traceEvents":[...]} document. */
    std::string toJson() const;

    /** Serialize to `path`; false (with a warning) on I/O failure. */
    bool writeTo(const std::string &path) const;

  private:
    struct Event
    {
        char phase = 'X';
        std::string name;
        std::string category;
        std::uint64_t ts = 0;
        std::uint64_t dur = 0;
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        /// optional args: (key, numeric value) or (key, string value)
        std::vector<std::pair<std::string, double>> numArgs;
        std::vector<std::pair<std::string, std::string>> strArgs;
    };

    void push(Event event);

    mutable std::mutex lock_;
    std::size_t maxEvents_;
    std::uint64_t dropped_ = 0;
    std::vector<Event> events_;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> threadIds_;
};

} // namespace critics::stats

#endif // CRITICS_STATS_TRACE_EVENT_HH
