#include "stats/interval.hh"

#include <algorithm>

#include "stats/registry.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace critics::stats
{

void
IntervalSeries::sample(const StatRegistry &reg, std::uint64_t index)
{
    const auto snap = reg.snapshot();
    if (names_.empty()) {
        names_.reserve(snap.size());
        for (const auto &[name, value] : snap)
            names_.push_back(name);
    } else {
        critics_assert(names_.size() == snap.size(),
                       "interval sample schema changed mid-series");
    }
    Row row;
    row.index = index;
    row.values.reserve(snap.size());
    for (const auto &[name, value] : snap)
        row.values.push_back(value);
    if (!rows_.empty() && rows_.back().index == index)
        rows_.back() = std::move(row);
    else
        rows_.push_back(std::move(row));
}

std::vector<double>
IntervalSeries::column(const std::string &name) const
{
    const auto it = std::find(names_.begin(), names_.end(), name);
    if (it == names_.end())
        return {};
    const auto col = static_cast<std::size_t>(it - names_.begin());
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto &row : rows_)
        out.push_back(row.values[col]);
    return out;
}

double
IntervalSeries::at(const Row &row, const std::string &name) const
{
    const auto it = std::find(names_.begin(), names_.end(), name);
    if (it == names_.end())
        return 0.0;
    return row.values[static_cast<std::size_t>(it - names_.begin())];
}

std::string
IntervalSeries::toJsonl(const std::string &label) const
{
    std::string out;
    for (const auto &row : rows_) {
        json::JsonWriter w;
        w.beginObject()
            .field("label", label)
            .field("committed", row.index);
        for (std::size_t i = 0; i < names_.size(); ++i)
            w.fieldReadable(names_[i].c_str(), row.values[i]);
        w.endObject();
        out += w.str();
        out += '\n';
    }
    return out;
}

} // namespace critics::stats
