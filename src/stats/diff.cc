#include "stats/diff.hh"

#include <algorithm>
#include <cmath>

namespace critics::stats
{

std::size_t
SnapshotDiff::regressions() const
{
    std::size_t n = 0;
    for (const auto &delta : deltas)
        n += delta.regression ? 1 : 0;
    return n;
}

bool
SnapshotDiff::hasRegressions() const
{
    return regressions() > 0 || !onlyBefore.empty() || !onlyAfter.empty();
}

std::vector<MetricDelta>
SnapshotDiff::worst(std::size_t count) const
{
    std::vector<MetricDelta> out = deltas;
    std::stable_sort(out.begin(), out.end(),
                     [](const MetricDelta &a, const MetricDelta &b) {
                         return a.relDelta > b.relDelta;
                     });
    if (out.size() > count)
        out.resize(count);
    return out;
}

MetricDelta
diffMetric(const std::string &name, double before, double after,
           const DiffOptions &opt)
{
    MetricDelta delta;
    delta.name = name;
    delta.before = before;
    delta.after = after;
    delta.absDelta = std::fabs(after - before);
    const double scale = std::max(std::fabs(before), std::fabs(after));
    delta.relDelta = scale > 0.0 ? delta.absDelta / scale : 0.0;
    // Non-finite on either side is always a regression: NaN never
    // compares equal, and a metric that became infinite is broken.
    if (!std::isfinite(before) || !std::isfinite(after)) {
        delta.regression = before != after ||
                           std::isnan(before) || std::isnan(after);
        return delta;
    }
    delta.regression = delta.relDelta > opt.relThreshold &&
                       delta.absDelta > opt.absThreshold;
    return delta;
}

SnapshotDiff
diffSnapshots(const Snapshot &before, const Snapshot &after,
              const DiffOptions &opt)
{
    Snapshot a = before;
    Snapshot b = after;
    const auto byName = [](const auto &x, const auto &y) {
        return x.first < y.first;
    };
    std::stable_sort(a.begin(), a.end(), byName);
    std::stable_sort(b.begin(), b.end(), byName);

    SnapshotDiff diff;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i].first < b[j].first) {
            diff.onlyBefore.push_back(a[i].first);
            ++i;
        } else if (b[j].first < a[i].first) {
            diff.onlyAfter.push_back(b[j].first);
            ++j;
        } else {
            diff.deltas.push_back(
                diffMetric(a[i].first, a[i].second, b[j].second, opt));
            ++i;
            ++j;
        }
    }
    for (; i < a.size(); ++i)
        diff.onlyBefore.push_back(a[i].first);
    for (; j < b.size(); ++j)
        diff.onlyAfter.push_back(b[j].first);
    return diff;
}

} // namespace critics::stats
