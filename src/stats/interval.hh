/**
 * @file
 * Interval time-series sampling over a StatRegistry.  A component that
 * owns a registry calls sample() at interesting indices (the CPU model
 * samples every N committed instructions, plus the warmup boundary and
 * the end of run); each sample snapshots every registered stat, so the
 * series shows bottlenecks *moving* over a run — e.g. the front-end
 * stall fraction collapsing once CritICs kick in (PAPER.md Fig. 3).
 *
 * Rows store cumulative raw values from the start of the run; the last
 * row therefore equals the end-of-run totals, and per-interval deltas
 * are row[i] - row[i-1].  The series owns copies of the sampled values
 * (not views), so it stays valid after the registry is gone.
 */

#ifndef CRITICS_STATS_INTERVAL_HH
#define CRITICS_STATS_INTERVAL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace critics::stats
{

class StatRegistry;

class IntervalSeries
{
  public:
    struct Row
    {
        std::uint64_t index = 0; ///< sampling position (committed insts)
        std::vector<double> values;
    };

    /**
     * Snapshot every stat of `reg` at position `index`.  The first
     * sample fixes the stat-name schema; later samples must come from
     * a registry with the same names.  A repeated index overwrites the
     * previous row (the warmup-boundary and end-of-run forced samples
     * can coincide with a periodic one).
     */
    void sample(const StatRegistry &reg, std::uint64_t index);

    bool empty() const { return rows_.empty(); }
    std::size_t size() const { return rows_.size(); }
    const std::vector<std::string> &names() const { return names_; }
    const std::vector<Row> &rows() const { return rows_; }

    /** Column of one stat across all rows; empty if unknown. */
    std::vector<double> column(const std::string &name) const;

    /** Value of `name` in one row; 0 if unknown. */
    double at(const Row &row, const std::string &name) const;

    /**
     * Serialize as JSONL: one flat object per row with "label",
     * "committed", and every stat under its dotted name (cumulative
     * values, readable doubles).
     */
    std::string toJsonl(const std::string &label) const;

  private:
    std::vector<std::string> names_;
    std::vector<Row> rows_;
};

} // namespace critics::stats

#endif // CRITICS_STATS_INTERVAL_HH
