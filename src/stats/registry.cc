#include "stats/registry.hh"

#include <algorithm>
#include <cmath>

#include "support/json.hh"
#include "support/logging.hh"

namespace critics::stats
{

double
VectorElem::eval() const
{
    if (counter)
        return static_cast<double>(*counter);
    if (value)
        return *value;
    return 0.0;
}

double
StatDef::eval() const
{
    switch (kind) {
      case StatKind::Counter:
        return counter ? static_cast<double>(*counter) : 0.0;
      case StatKind::Value:
        return value ? *value : 0.0;
      case StatKind::Formula: {
        const double v = formula ? formula() : 0.0;
        return std::isfinite(v) ? v : 0.0;
      }
      case StatKind::Vector: {
        double sum = 0.0;
        for (const auto &elem : elems)
            sum += elem.eval();
        return sum;
      }
      case StatKind::Distribution:
        return dist ? dist->total() : 0.0;
      case StatKind::Latency:
        return latency ? static_cast<double>(latency->count()) : 0.0;
    }
    return 0.0;
}

const StatDef &
StatRegistry::add(StatDef def)
{
    critics_assert(!def.name.empty(), "unnamed stat");
    for (const auto &existing : defs_) {
        if (existing.name == def.name)
            critics_panic("duplicate stat '", def.name, "'");
        // A leaf name may not double as a group prefix (and vice
        // versa): that could not nest into one JSON tree.
        const auto &shorter = existing.name.size() < def.name.size()
            ? existing.name : def.name;
        const auto &longer = existing.name.size() < def.name.size()
            ? def.name : existing.name;
        if (longer.size() > shorter.size() &&
            longer.compare(0, shorter.size(), shorter) == 0 &&
            longer[shorter.size()] == '.') {
            critics_panic("stat '", def.name, "' conflicts with group '",
                          existing.name, "'");
        }
    }
    defs_.push_back(std::move(def));
    sorted_ = false;
    return defs_.back();
}

void
StatRegistry::addCounter(const std::string &name, const std::uint64_t &v,
                         std::string desc)
{
    StatDef def;
    def.name = name;
    def.desc = std::move(desc);
    def.kind = StatKind::Counter;
    def.counter = &v;
    add(std::move(def));
}

void
StatRegistry::addValue(const std::string &name, const double &v,
                       std::string desc)
{
    StatDef def;
    def.name = name;
    def.desc = std::move(desc);
    def.kind = StatKind::Value;
    def.value = &v;
    add(std::move(def));
}

void
StatRegistry::addFormula(const std::string &name,
                         std::function<double()> formula,
                         std::string desc)
{
    critics_assert(formula != nullptr, "formula stat '", name,
                   "' without a formula");
    StatDef def;
    def.name = name;
    def.desc = std::move(desc);
    def.kind = StatKind::Formula;
    def.formula = std::move(formula);
    add(std::move(def));
}

void
StatRegistry::addVector(const std::string &name,
                        std::vector<VectorElem> elems, std::string desc)
{
    critics_assert(!elems.empty(), "empty vector stat '", name, "'");
    StatDef def;
    def.name = name;
    def.desc = std::move(desc);
    def.kind = StatKind::Vector;
    def.elems = std::move(elems);
    add(std::move(def));
}

void
StatRegistry::addDistribution(const std::string &name, const Histogram &h,
                              std::string desc)
{
    StatDef def;
    def.name = name;
    def.desc = std::move(desc);
    def.kind = StatKind::Distribution;
    def.dist = &h;
    add(std::move(def));
}

void
StatRegistry::addLatency(const std::string &name,
                         const LatencyHistogram &h, std::string desc)
{
    StatDef def;
    def.name = name;
    def.desc = std::move(desc);
    def.kind = StatKind::Latency;
    def.latency = &h;
    add(std::move(def));
}

void
StatRegistry::sortIfNeeded() const
{
    if (sorted_)
        return;
    std::sort(defs_.begin(), defs_.end(),
              [](const StatDef &a, const StatDef &b) {
                  return a.name < b.name;
              });
    sorted_ = true;
}

const StatDef *
StatRegistry::find(const std::string &name) const
{
    sortIfNeeded();
    const auto it = std::lower_bound(
        defs_.begin(), defs_.end(), name,
        [](const StatDef &def, const std::string &key) {
            return def.name < key;
        });
    if (it == defs_.end() || it->name != name)
        return nullptr;
    return &*it;
}

void
StatRegistry::forEach(const std::function<void(const StatDef &)> &fn) const
{
    sortIfNeeded();
    for (const auto &def : defs_)
        fn(def);
}

std::vector<std::pair<std::string, double>>
StatRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(defs_.size());
    forEach([&](const StatDef &def) {
        switch (def.kind) {
          case StatKind::Vector:
            for (const auto &elem : def.elems)
                out.emplace_back(def.name + "." + elem.name, elem.eval());
            break;
          case StatKind::Distribution:
            out.emplace_back(def.name + ".count", def.dist->total());
            out.emplace_back(def.name + ".mean", def.dist->mean());
            out.emplace_back(def.name + ".min",
                             static_cast<double>(def.dist->minBucket()));
            out.emplace_back(def.name + ".max",
                             static_cast<double>(def.dist->maxBucket()));
            break;
          case StatKind::Latency:
            out.emplace_back(def.name + ".count",
                             static_cast<double>(def.latency->count()));
            out.emplace_back(def.name + ".mean", def.latency->mean());
            out.emplace_back(def.name + ".p50",
                             def.latency->percentile(0.50));
            out.emplace_back(def.name + ".p90",
                             def.latency->percentile(0.90));
            out.emplace_back(def.name + ".p99",
                             def.latency->percentile(0.99));
            break;
          default:
            out.emplace_back(def.name, def.eval());
        }
    });
    return out;
}

namespace
{

void
writeLeaf(json::JsonWriter &w, const char *key, const StatDef &def)
{
    switch (def.kind) {
      case StatKind::Counter:
        w.field(key, def.counter ? *def.counter : 0);
        break;
      case StatKind::Value:
      case StatKind::Formula:
        w.fieldReadable(key, def.eval());
        break;
      case StatKind::Vector:
        w.beginObject(key);
        for (const auto &elem : def.elems) {
            if (elem.counter)
                w.field(elem.name.c_str(), *elem.counter);
            else
                w.fieldReadable(elem.name.c_str(), elem.eval());
        }
        w.endObject();
        break;
      case StatKind::Distribution: {
        w.beginObject(key);
        w.fieldReadable("count", def.dist->total());
        w.fieldReadable("mean", def.dist->mean());
        w.field("min", static_cast<std::int64_t>(def.dist->minBucket()));
        w.field("max", static_cast<std::int64_t>(def.dist->maxBucket()));
        w.beginObject("buckets");
        for (const auto &[bucket, weight] : def.dist->buckets()) {
            w.fieldReadable(std::to_string(bucket).c_str(), weight);
        }
        w.endObject();
        w.endObject();
        break;
      }
      case StatKind::Latency: {
        w.beginObject(key);
        w.field("count", def.latency->count());
        w.fieldReadable("mean", def.latency->mean());
        w.fieldReadable("max", def.latency->max());
        w.fieldReadable("p50", def.latency->percentile(0.50));
        w.fieldReadable("p90", def.latency->percentile(0.90));
        w.fieldReadable("p99", def.latency->percentile(0.99));
        w.endObject();
        break;
      }
    }
}

/** How many already-open groups the next name can stay inside. */
std::size_t
sharedGroups(const std::vector<std::string> &open,
             const std::vector<std::string> &parts)
{
    std::size_t n = 0;
    // parts.back() is the leaf key and can never match a group.
    const std::size_t limit = std::min(open.size(), parts.size() - 1);
    while (n < limit && open[n] == parts[n])
        ++n;
    return n;
}

std::vector<std::string>
splitDots(const std::string &name)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t dot = name.find('.', start);
        if (dot == std::string::npos) {
            parts.push_back(name.substr(start));
            return parts;
        }
        parts.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
}

} // namespace

void
StatRegistry::writeJson(json::JsonWriter &w) const
{
    // Names are sorted, so a simple open/close walk over the shared
    // prefix depth produces correctly nested groups.
    std::vector<std::string> open;
    forEach([&](const StatDef &def) {
        const auto parts = splitDots(def.name);
        const std::size_t keep = sharedGroups(open, parts);
        while (open.size() > keep) {
            w.endObject();
            open.pop_back();
        }
        for (std::size_t i = open.size(); i + 1 < parts.size(); ++i) {
            w.beginObject(parts[i].c_str());
            open.push_back(parts[i]);
        }
        writeLeaf(w, parts.back().c_str(), def);
    });
    while (!open.empty()) {
        w.endObject();
        open.pop_back();
    }
}

std::string
StatRegistry::toJson() const
{
    json::JsonWriter w;
    w.beginObject();
    writeJson(w);
    w.endObject();
    return w.str();
}

} // namespace critics::stats
