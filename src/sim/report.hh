/**
 * @file
 * Machine-readable result export: serialize RunResult/CpuStats to a
 * small JSON document so external tooling (plotting scripts, CI
 * regression checks) can consume bench output without parsing tables.
 */

#ifndef CRITICS_SIM_REPORT_HH
#define CRITICS_SIM_REPORT_HH

#include <string>

#include "sim/experiment.hh"

namespace critics::sim
{

/** Serialize one run as a JSON object (no external dependencies; keys
 *  are stable API). */
std::string toJson(const RunResult &result,
                   const std::string &label = "run");

/** Serialize a labelled baseline/variant pair with the speedup. */
std::string comparisonJson(const RunResult &baseline,
                           const RunResult &variant,
                           const std::string &label);

} // namespace critics::sim

#endif // CRITICS_SIM_REPORT_HH
