/**
 * @file
 * Machine-readable result export: serialize RunResult/CpuStats to a
 * small JSON document so external tooling (plotting scripts, CI
 * regression checks) can consume bench output without parsing tables.
 *
 * Serialization walks the stat registry (bindRunResult), so every
 * exporter — this report, the interval sampler, `critics_cli diff` —
 * sees the same dotted names and values.
 */

#ifndef CRITICS_SIM_REPORT_HH
#define CRITICS_SIM_REPORT_HH

#include <string>

#include "sim/experiment.hh"

namespace critics::stats
{
class StatRegistry;
}

namespace critics::sim
{

/**
 * Register every RunResult metric: the CPU under "cpu", the memory
 * hierarchy under "mem", energy under "energy", the compiler pass
 * under "pass" and the run-level fractions under "run".  `result`
 * must outlive the registry.
 */
void bindRunResult(stats::StatRegistry &reg, const RunResult &result);

/** Serialize one run as a nested JSON object (no external
 *  dependencies; dotted stat names are stable API). */
std::string toJson(const RunResult &result,
                   const std::string &label = "run");

/** Serialize a labelled baseline/variant pair with the speedup. */
std::string comparisonJson(const RunResult &baseline,
                           const RunResult &variant,
                           const std::string &label);

} // namespace critics::sim

#endif // CRITICS_SIM_REPORT_HH
