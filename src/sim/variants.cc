#include "sim/variants.hh"

#include "support/logging.hh"

namespace critics::sim
{

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::string current;
    for (const char c : text) {
        if (c == ',') {
            if (!current.empty())
                out.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        out.push_back(current);
    return out;
}

const std::vector<std::string> &
allVariantNames()
{
    static const std::vector<std::string> names = {
        "baseline", "hoist", "critic", "critic-ideal",
        "critic-branchpair", "opp16", "compress", "opp16+critic",
        "prefetch", "aluprio", "backendprio", "efetch", "perfectbr",
        "icache4x", "2xfd", "allhw",
    };
    return names;
}

std::optional<Variant>
tryParseVariant(const std::string &name)
{
    Variant v;
    v.label = name;
    if (name == "baseline") {
    } else if (name == "hoist") {
        v.transform = Transform::Hoist;
    } else if (name == "critic") {
        v.transform = Transform::CritIc;
    } else if (name == "critic-ideal") {
        v.transform = Transform::CritIcIdeal;
    } else if (name == "critic-branchpair") {
        v.transform = Transform::CritIc;
        v.switchMode = compiler::SwitchMode::BranchPair;
    } else if (name == "opp16") {
        v.transform = Transform::Opp16;
    } else if (name == "compress") {
        v.transform = Transform::Compress;
    } else if (name == "opp16+critic") {
        v.transform = Transform::Opp16PlusCritIc;
    } else if (name == "prefetch") {
        v.criticalLoadPrefetch = true;
    } else if (name == "aluprio") {
        v.aluPrio = true;
    } else if (name == "backendprio") {
        v.backendPrio = true;
    } else if (name == "efetch") {
        v.efetch = true;
    } else if (name == "perfectbr") {
        v.perfectBranch = true;
    } else if (name == "icache4x") {
        v.icache4x = true;
    } else if (name == "2xfd") {
        v.doubleFrontend = true;
    } else if (name == "allhw") {
        v.doubleFrontend = v.icache4x = v.efetch = v.perfectBranch =
            v.backendPrio = true;
    } else {
        return std::nullopt;
    }
    return v;
}

Variant
parseVariant(const std::string &name)
{
    const auto v = tryParseVariant(name);
    if (!v) {
        critics_fatal("unknown variant '", name,
                      "' (see --help for the list)");
    }
    return *v;
}

std::optional<std::vector<workload::AppProfile>>
tryParseApps(const std::string &value, std::string *error)
{
    if (value == "mobile" || value == "android")
        return workload::mobileApps();
    if (value == "specint")
        return workload::specIntApps();
    if (value == "specfloat")
        return workload::specFloatApps();
    if (value == "all")
        return workload::allApps();

    // findApp is fatal on an unknown name; remote input must fail
    // soft, so resolve against the full registry here.
    static const std::vector<workload::AppProfile> registry =
        workload::allApps();
    std::vector<workload::AppProfile> apps;
    for (const auto &name : splitList(value)) {
        const workload::AppProfile *found = nullptr;
        for (const auto &profile : registry) {
            if (profile.name == name) {
                found = &profile;
                break;
            }
        }
        if (found == nullptr) {
            if (error != nullptr)
                *error = "unknown app '" + name + "'";
            return std::nullopt;
        }
        apps.push_back(*found);
    }
    if (apps.empty()) {
        if (error != nullptr)
            *error = "empty app list";
        return std::nullopt;
    }
    return apps;
}

std::optional<std::vector<Variant>>
tryParseVariants(const std::string &value, std::string *error)
{
    std::vector<std::string> names;
    if (value == "all")
        names = allVariantNames();
    else
        names = splitList(value);
    std::vector<Variant> variants;
    for (const auto &name : names) {
        const auto v = tryParseVariant(name);
        if (!v) {
            if (error != nullptr)
                *error = "unknown variant '" + name + "'";
            return std::nullopt;
        }
        variants.push_back(*v);
    }
    if (variants.empty()) {
        if (error != nullptr)
            *error = "empty variant list";
        return std::nullopt;
    }
    return variants;
}

std::vector<workload::AppProfile>
parseApps(const std::string &value)
{
    std::string error;
    auto apps = tryParseApps(value, &error);
    if (!apps)
        critics_fatal("--apps: ", error);
    return *apps;
}

std::vector<Variant>
parseVariants(const std::string &value)
{
    std::string error;
    auto variants = tryParseVariants(value, &error);
    if (!variants)
        critics_fatal("--variants: ", error);
    return *variants;
}

} // namespace critics::sim
