#include "sim/experiment.hh"

#include <sstream>

#include "support/logging.hh"
#include "support/rng.hh"

namespace critics::sim
{

using analysis::SelectOptions;
using analysis::Selection;
using compiler::CritIcPassOptions;

AppExperiment::AppExperiment(const workload::AppProfile &profile,
                             const ExperimentOptions &options)
    : profile_(profile),
      options_(options),
      program_(workload::synthesize(profile))
{
    Rng walkRng(hashCombine(profile.seed, 0xA117ULL));
    program::WalkLimits limits;
    limits.targetInsts = options_.traceInsts;
    path_ = program::walkProgram(program_, walkRng, limits);
    trace_ = program::emitTrace(program_, path_);
}

const analysis::FanoutInfo &
AppExperiment::fanout()
{
    std::lock_guard<std::recursive_mutex> guard(lazyLock_);
    if (!fanout_)
        fanout_ = analysis::computeFanout(trace_, options_.crit);
    return *fanout_;
}

const analysis::DynChains &
AppExperiment::chains()
{
    std::lock_guard<std::recursive_mutex> guard(lazyLock_);
    if (!chains_)
        chains_ = analysis::extractChains(trace_, fanout(), options_.crit);
    return *chains_;
}

const analysis::ChainStats &
AppExperiment::chainStats()
{
    std::lock_guard<std::recursive_mutex> guard(lazyLock_);
    if (!chainStats_) {
        chainStats_ = analysis::chainStatistics(trace_, chains(),
                                                fanout(), options_.crit);
    }
    return *chainStats_;
}

const analysis::MineResult &
AppExperiment::mined()
{
    return minedAt(options_.profileFraction);
}

const analysis::MineResult &
AppExperiment::minedAt(double fraction)
{
    std::lock_guard<std::recursive_mutex> guard(lazyLock_);
    const int key = static_cast<int>(fraction * 1000.0 + 0.5);
    auto it = mined_.find(key);
    if (it == mined_.end()) {
        it = mined_.emplace(key,
            analysis::mineCritIcs(trace_, program_, chains(), fanout(),
                                  options_.crit, fraction)).first;
    }
    return it->second;
}

const std::unordered_set<program::InstUid> &
AppExperiment::criticalSet()
{
    std::lock_guard<std::recursive_mutex> guard(lazyLock_);
    if (!criticalSet_)
        criticalSet_ = analysis::buildCriticalSet(trace_, fanout());
    return *criticalSet_;
}

const RunResult &
AppExperiment::baseline()
{
    std::lock_guard<std::recursive_mutex> guard(lazyLock_);
    if (!baseline_)
        baseline_ = run(Variant{});
    return *baseline_;
}

RunResult
AppExperiment::run(const Variant &variant)
{
    return run(variant, RunHooks{});
}

compiler::PassStats
AppExperiment::applyTransform(program::Program &prog,
                              const Variant &variant,
                              double *selectionCoverage,
                              verify::PassAudit *audit)
{
    compiler::PassStats pass;
    const double fraction =
        variant.profileFraction.value_or(options_.profileFraction);

    auto selectChains = [&](bool ideal) {
        SelectOptions sel;
        sel.maxLen = variant.maxChainLen;
        sel.exactLen = variant.exactChainLen;
        sel.ideal = ideal;
        const Selection selection =
            analysis::selectCritIcs(minedAt(fraction), sel);
        if (selectionCoverage != nullptr)
            *selectionCoverage = selection.expectedCoverage;
        return selection;
    };

    switch (variant.transform) {
      case Transform::None:
        break;
      case Transform::Hoist: {
        CritIcPassOptions opt;
        opt.convertToThumb = false;
        opt.switchMode = compiler::SwitchMode::None;
        pass = compiler::applyCritIcPass(
            prog, selectChains(false).chains, opt, audit);
        break;
      }
      case Transform::CritIc: {
        CritIcPassOptions opt;
        opt.switchMode = variant.switchMode;
        pass = compiler::applyCritIcPass(
            prog, selectChains(false).chains, opt, audit);
        break;
      }
      case Transform::CritIcIdeal: {
        CritIcPassOptions opt;
        opt.switchMode = variant.switchMode;
        opt.forceConvert = true;
        pass = compiler::applyCritIcPass(
            prog, selectChains(true).chains, opt, audit);
        break;
      }
      case Transform::Opp16:
        pass = compiler::applyOpp16Pass(prog, 3, audit);
        break;
      case Transform::Compress:
        pass = compiler::applyCompressPass(prog, audit);
        break;
      case Transform::Opp16PlusCritIc: {
        CritIcPassOptions opt;
        opt.switchMode = variant.switchMode;
        pass = compiler::applyCritIcPass(
            prog, selectChains(false).chains, opt, audit);
        const compiler::PassStats opp =
            compiler::applyOpp16Pass(prog, 3, audit);
        pass.instsConverted += opp.instsConverted;
        pass.instsExpanded += opp.instsExpanded;
        pass.cdpsInserted += opp.cdpsInserted;
        break;
      }
    }
    return pass;
}

RunResult
AppExperiment::run(const Variant &variant, const RunHooks &hooks)
{
    RunResult result;

    // ---- Software transform ------------------------------------------
    program::Program prog = program_; // transformed copy
    result.pass =
        applyTransform(prog, variant, &result.selectionCoverage);
    result.staticThumbFraction = prog.thumbFraction();

    // ---- Trace re-emission against the transformed binary -------------
    const bool transformed = variant.transform != Transform::None;
    program::Trace localTrace;
    const program::Trace *tracePtr = &trace_;
    if (transformed) {
        localTrace = program::emitTrace(prog, path_);
        tracePtr = &localTrace;
    }

    std::uint64_t thumbDyn = 0, dynTotal = 0;
    for (const auto &d : tracePtr->insts) {
        if (d.op == isa::OpClass::Cdp)
            continue;
        ++dynTotal;
        if (d.sizeBytes == 2)
            ++thumbDyn;
    }
    result.dynThumbFraction = dynTotal
        ? static_cast<double>(thumbDyn) / static_cast<double>(dynTotal)
        : 0.0;

    // ---- Hardware configuration ----------------------------------------
    cpu::CpuConfig cpuCfg;
    cpuCfg.warmupCommits = static_cast<std::uint64_t>(
        static_cast<double>(tracePtr->size()) *
        options_.warmupFraction);
    if (variant.doubleFrontend)
        cpuCfg.doubleFrontend();
    cpuCfg.aluPrioritization = variant.aluPrio;
    cpuCfg.backendPrio = variant.backendPrio;
    cpuCfg.criticalLoadPrefetch = variant.criticalLoadPrefetch;
    cpuCfg.efetch = variant.efetch;
    cpuCfg.statsInterval = hooks.statsInterval;
    cpuCfg.intervals = hooks.intervals;
    cpuCfg.traceSink = hooks.trace;
    cpuCfg.traceMaxInsts = hooks.traceMaxInsts;

    mem::MemConfig memCfg;
    if (variant.icache4x)
        memCfg.icache.sizeBytes *= 4;

    std::unique_ptr<bpu::BranchPredictor> predictor;
    if (variant.perfectBranch)
        predictor = std::make_unique<bpu::PerfectPredictor>();
    else
        predictor = std::make_unique<bpu::TwoLevelPredictor>();

    const bool needsCritSet = variant.aluPrio || variant.backendPrio ||
                              variant.criticalLoadPrefetch;
    const std::vector<std::uint8_t> *mask =
        transformed ? nullptr : &fanout().critMask;

    result.cpu = cpu::runTrace(*tracePtr, cpuCfg, memCfg, *predictor,
                               mask,
                               needsCritSet ? &criticalSet() : nullptr);
    result.energy = energy::computeEnergy(result.cpu);
    return result;
}

double
AppExperiment::speedup(const RunResult &result)
{
    const double base = static_cast<double>(baseline().cpu.cycles);
    const double var = static_cast<double>(result.cpu.cycles);
    critics_assert(var > 0, "zero-cycle run");
    return base / var;
}

std::string
describeBaselineConfig()
{
    std::ostringstream os;
    os << "Baseline configuration (Table I):\n"
       << "  CPU: 4-wide Fetch/Decode/Rename/ROB/Issue/Execute/Commit "
          "superscalar; 128-entry ROB;\n"
       << "       4k-entry 2-level BPU; 8-byte/cycle fetch/decode "
          "datapath (DESIGN.md par.6);\n"
       << "       2 ALUs, 1 mul/div, 1 FPU, 2 mem ports\n"
       << "  Mem: 2-way 32KB i-cache + 64KB d-cache (2-cycle hit); "
          "8-way 2MB L2 (10-cycle hit)\n"
       << "       with CLPT stride prefetcher (1024 entries)\n"
       << "  DRAM: LPDDR3, 1 channel, 2 ranks, 8 banks/rank, "
          "open-page; tCL,tRP,tRCD = 13,13,13 ns\n";
    return os.str();
}

} // namespace critics::sim
