#include "sim/experiment.hh"

#include <cstring>
#include <sstream>

#include "analysis/mode.hh"
#include "obs/obs.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace critics::sim
{

namespace
{

// The ctor synthesizes in its initializer list, where no scope object
// can live — route the call through a helper so the synth stage is
// still attributed.
program::Program
synthWithScope(const workload::AppProfile &profile)
{
    obs::StageScope scope(obs::Stage::Synth);
    return workload::synthesize(profile);
}

} // namespace

using analysis::SelectOptions;
using analysis::Selection;
using compiler::CritIcPassOptions;

struct AppExperiment::MinedSlot
{
    std::once_flag once;
    analysis::MineResult result;
};

struct AppExperiment::TransformSlot
{
    std::once_flag once;
    compiler::PassStats pass;
    double selectionCoverage = 0.0;
    double staticThumbFraction = 0.0;
    program::Trace trace;
};

TransformKey
transformMemoKey(const Variant &variant, double defaultFraction)
{
    const double fraction =
        variant.profileFraction.value_or(defaultFraction);
    std::uint64_t fractionBits = 0;
    static_assert(sizeof fractionBits == sizeof fraction);
    std::memcpy(&fractionBits, &fraction, sizeof fractionBits);
    return {static_cast<std::uint8_t>(variant.transform),
            static_cast<std::uint8_t>(variant.switchMode),
            variant.maxChainLen, variant.exactChainLen, fractionBits};
}

AppExperiment::AppExperiment(const workload::AppProfile &profile,
                             const ExperimentOptions &options)
    : profile_(profile),
      options_(options),
      program_(synthWithScope(profile))
{
    obs::StageScope scope(obs::Stage::Emit);
    Rng walkRng(streamSeed(profile.seed, RngStream::Walk));
    program::WalkLimits limits;
    limits.targetInsts = options_.traceInsts;
    path_ = program::walkProgram(program_, walkRng, limits);
    trace_ = program::emitTrace(program_, path_);
}

const analysis::FanoutInfo &
AppExperiment::fanout()
{
    std::call_once(fanoutOnce_, [&] {
        obs::StageScope scope(obs::Stage::Analyze);
        fanout_ = analysis::computeFanout(trace_, options_.crit);
    });
    return *fanout_;
}

const analysis::DynChains &
AppExperiment::chains()
{
    std::call_once(chainsOnce_, [&] {
        obs::StageScope scope(obs::Stage::Analyze);
        chains_ =
            analysis::extractChains(trace_, fanout(), options_.crit);
    });
    return *chains_;
}

const analysis::ChainStats &
AppExperiment::chainStats()
{
    std::call_once(chainStatsOnce_, [&] {
        obs::StageScope scope(obs::Stage::Analyze);
        chainStats_ = analysis::chainStatistics(trace_, chains(),
                                                fanout(), options_.crit);
    });
    return *chainStats_;
}

const analysis::MineResult &
AppExperiment::mined()
{
    return minedAt(options_.profileFraction);
}

const analysis::MineResult &
AppExperiment::minedAt(double fraction)
{
    // Key on the exact bit pattern of the fraction: the old
    // int(fraction*1000+0.5) key collided for fractions closer than
    // 1e-3 and misrounded negative values.
    std::uint64_t key = 0;
    static_assert(sizeof key == sizeof fraction);
    std::memcpy(&key, &fraction, sizeof key);
    std::shared_ptr<MinedSlot> slot;
    {
        std::lock_guard<std::mutex> guard(minedLock_);
        auto &entry = mined_[key];
        if (!entry)
            entry = std::make_shared<MinedSlot>();
        slot = entry;
    }
    std::call_once(slot->once, [&] {
        obs::StageScope scope(obs::Stage::Analyze);
        // The legacy analyze path ignores the location cache (it
        // resolves through Program::locate as it always did), so only
        // the flat path pays for building it.
        const analysis::LocTable *locs =
            analysis::flatAnalyzeEnabled() ? &locTable() : nullptr;
        slot->result =
            analysis::mineCritIcs(trace_, program_, chains(), fanout(),
                                  options_.crit, fraction, locs);
    });
    return slot->result;
}

const analysis::LocTable &
AppExperiment::locTable()
{
    std::call_once(locTableOnce_, [&] {
        obs::StageScope scope(obs::Stage::Analyze);
        locTable_.emplace(program_);
    });
    return *locTable_;
}

const std::unordered_set<program::InstUid> &
AppExperiment::criticalSet()
{
    std::call_once(criticalSetOnce_, [&] {
        obs::StageScope scope(obs::Stage::Analyze);
        criticalSet_ = analysis::buildCriticalSet(trace_, fanout());
    });
    return *criticalSet_;
}

double
AppExperiment::baselineStaticThumbFraction()
{
    std::call_once(staticThumbOnce_, [&] {
        staticThumb_ = program_.thumbFraction();
    });
    return staticThumb_;
}

const RunResult &
AppExperiment::baseline()
{
    std::call_once(baselineOnce_, [&] { baseline_ = run(Variant{}); });
    return *baseline_;
}

std::shared_ptr<const AppExperiment::TransformSlot>
AppExperiment::transformedTrace(const Variant &variant)
{
    const TransformKey key =
        transformMemoKey(variant, options_.profileFraction);
    std::shared_ptr<TransformSlot> slot;
    {
        std::lock_guard<std::mutex> guard(memoLock_);
        auto &entry = memo_[key];
        if (!entry)
            entry = std::make_shared<TransformSlot>();
        slot = entry;
    }
    std::call_once(slot->once, [&] {
        obs::StageScope scope(obs::Stage::Transform);
        program::Program prog = program_; // transformed copy
        slot->pass =
            applyTransform(prog, variant, &slot->selectionCoverage);
        slot->staticThumbFraction = prog.thumbFraction();
        slot->trace = program::emitTrace(prog, path_);
    });
    return slot;
}

RunResult
AppExperiment::run(const Variant &variant)
{
    return run(variant, RunHooks{});
}

MaterializedTransform
AppExperiment::materializeTransform(const Variant &variant,
                                    verify::PassAudit *audit)
{
    obs::StageScope scope(obs::Stage::Transform);
    MaterializedTransform m;
    m.prog = program_;
    m.pass = applyTransform(m.prog, variant, nullptr, audit);
    m.trace = program::emitTrace(m.prog, path_);
    return m;
}

compiler::PassStats
AppExperiment::applyTransform(program::Program &prog,
                              const Variant &variant,
                              double *selectionCoverage,
                              verify::PassAudit *audit)
{
    // Covers the lint path too, which calls this directly; minedAt()
    // inside selectChains re-marks its own work as Analyze.
    obs::StageScope scope(obs::Stage::Transform);
    compiler::PassStats pass;
    const double fraction =
        variant.profileFraction.value_or(options_.profileFraction);

    auto selectChains = [&](bool ideal) {
        SelectOptions sel;
        sel.maxLen = variant.maxChainLen;
        sel.exactLen = variant.exactChainLen;
        sel.ideal = ideal;
        const Selection selection =
            analysis::selectCritIcs(minedAt(fraction), sel);
        if (selectionCoverage != nullptr)
            *selectionCoverage = selection.expectedCoverage;
        return selection;
    };

    switch (variant.transform) {
      case Transform::None:
        break;
      case Transform::Hoist: {
        CritIcPassOptions opt;
        opt.convertToThumb = false;
        opt.switchMode = compiler::SwitchMode::None;
        pass = compiler::applyCritIcPass(
            prog, selectChains(false).chains, opt, audit);
        break;
      }
      case Transform::CritIc: {
        CritIcPassOptions opt;
        opt.switchMode = variant.switchMode;
        pass = compiler::applyCritIcPass(
            prog, selectChains(false).chains, opt, audit);
        break;
      }
      case Transform::CritIcIdeal: {
        CritIcPassOptions opt;
        opt.switchMode = variant.switchMode;
        opt.forceConvert = true;
        pass = compiler::applyCritIcPass(
            prog, selectChains(true).chains, opt, audit);
        break;
      }
      case Transform::Opp16:
        pass = compiler::applyOpp16Pass(prog, 3, audit);
        break;
      case Transform::Compress:
        pass = compiler::applyCompressPass(prog, audit);
        break;
      case Transform::Opp16PlusCritIc: {
        CritIcPassOptions opt;
        opt.switchMode = variant.switchMode;
        pass = compiler::applyCritIcPass(
            prog, selectChains(false).chains, opt, audit);
        const compiler::PassStats opp =
            compiler::applyOpp16Pass(prog, 3, audit);
        pass.instsConverted += opp.instsConverted;
        pass.instsExpanded += opp.instsExpanded;
        pass.cdpsInserted += opp.cdpsInserted;
        break;
      }
    }
    return pass;
}

RunResult
AppExperiment::run(const Variant &variant, const RunHooks &hooks)
{
    RunResult result;

    const bool transformed = variant.transform != Transform::None;

    // ---- Software transform + trace against the transformed binary ----
    std::shared_ptr<const TransformSlot> memo; // keeps trace alive
    const program::Trace *tracePtr = &trace_;
    if (transformed) {
        memo = transformedTrace(variant);
        result.pass = memo->pass;
        result.selectionCoverage = memo->selectionCoverage;
        result.staticThumbFraction = memo->staticThumbFraction;
        tracePtr = &memo->trace;
        result.dynThumbFraction = memo->trace.dynThumbFraction();
    } else {
        // Transform::None: the baseline binary and trace already
        // exist — no copy, no re-emission, no rescan.
        result.staticThumbFraction = baselineStaticThumbFraction();
        result.dynThumbFraction = trace_.dynThumbFraction();
    }

    // ---- Hardware configuration ----------------------------------------
    cpu::CpuConfig cpuCfg;
    cpuCfg.warmupCommits = static_cast<std::uint64_t>(
        static_cast<double>(tracePtr->size()) *
        options_.warmupFraction);
    if (variant.doubleFrontend)
        cpuCfg.doubleFrontend();
    cpuCfg.aluPrioritization = variant.aluPrio;
    cpuCfg.backendPrio = variant.backendPrio;
    cpuCfg.criticalLoadPrefetch = variant.criticalLoadPrefetch;
    cpuCfg.efetch = variant.efetch;
    cpuCfg.statsInterval = hooks.statsInterval;
    cpuCfg.intervals = hooks.intervals;
    cpuCfg.traceSink = hooks.trace;
    cpuCfg.traceMaxInsts = hooks.traceMaxInsts;

    mem::MemConfig memCfg;
    if (variant.icache4x)
        memCfg.icache.sizeBytes *= 4;

    std::unique_ptr<bpu::BranchPredictor> predictor;
    if (variant.perfectBranch)
        predictor = std::make_unique<bpu::PerfectPredictor>();
    else
        predictor = std::make_unique<bpu::TwoLevelPredictor>();

    const bool needsCritSet = variant.aluPrio || variant.backendPrio ||
                              variant.criticalLoadPrefetch;
    const std::vector<std::uint8_t> *mask =
        transformed ? nullptr : &fanout().critMask;

    obs::StageScope scope(obs::Stage::Simulate);
    result.cpu = cpu::runTrace(*tracePtr, cpuCfg, memCfg, *predictor,
                               mask,
                               needsCritSet ? &criticalSet() : nullptr);
    result.energy = energy::computeEnergy(result.cpu);
    return result;
}

double
AppExperiment::speedup(const RunResult &result)
{
    const double base = static_cast<double>(baseline().cpu.cycles);
    const double var = static_cast<double>(result.cpu.cycles);
    critics_assert(var > 0, "zero-cycle run");
    return base / var;
}

std::string
describeBaselineConfig()
{
    std::ostringstream os;
    os << "Baseline configuration (Table I):\n"
       << "  CPU: 4-wide Fetch/Decode/Rename/ROB/Issue/Execute/Commit "
          "superscalar; 128-entry ROB;\n"
       << "       4k-entry 2-level BPU; 8-byte/cycle fetch/decode "
          "datapath (DESIGN.md par.6);\n"
       << "       2 ALUs, 1 mul/div, 1 FPU, 2 mem ports\n"
       << "  Mem: 2-way 32KB i-cache + 64KB d-cache (2-cycle hit); "
          "8-way 2MB L2 (10-cycle hit)\n"
       << "       with CLPT stride prefetcher (1024 entries)\n"
       << "  DRAM: LPDDR3, 1 channel, 2 ranks, 8 banks/rank, "
          "open-page; tCL,tRP,tRCD = 13,13,13 ns\n";
    return os.str();
}

} // namespace critics::sim
