#include "sim/report.hh"

#include <cmath>

#include "stats/registry.hh"
#include "support/json.hh"

namespace critics::sim
{

void
bindRunResult(stats::StatRegistry &reg, const RunResult &result)
{
    result.cpu.registerStats(reg, "cpu");
    result.cpu.mem.registerStats(reg, "mem");
    result.energy.registerStats(reg, "energy");
    result.pass.registerStats(reg, "pass");
    reg.addValue("run.selectionCoverage", result.selectionCoverage,
                 "expected dynamic coverage of selected chains");
    reg.addValue("run.staticThumbFraction", result.staticThumbFraction,
                 "static instructions in 16-bit format");
    reg.addValue("run.dynThumbFraction", result.dynThumbFraction,
                 "dynamic instructions in 16-bit format");
}

namespace
{

void
writeRun(json::JsonWriter &w, const RunResult &result,
         const std::string &label)
{
    stats::StatRegistry reg;
    bindRunResult(reg, result);
    w.field("label", label);
    reg.writeJson(w);
}

double
finiteOrZero(double v)
{
    return std::isfinite(v) ? v : 0.0;
}

} // namespace

std::string
toJson(const RunResult &result, const std::string &label)
{
    json::JsonWriter w;
    w.beginObject();
    writeRun(w, result, label);
    w.endObject();
    return w.str();
}

std::string
comparisonJson(const RunResult &baseline, const RunResult &variant,
               const std::string &label)
{
    json::JsonWriter w;
    w.beginObject();
    w.field("label", label);
    w.fieldReadable("speedup",
                    finiteOrZero(
                        static_cast<double>(baseline.cpu.cycles) /
                        static_cast<double>(variant.cpu.cycles)));
    w.fieldReadable("energyRatio",
                    finiteOrZero(variant.energy.total() /
                                 baseline.energy.total()));
    w.beginObject("baseline");
    writeRun(w, baseline, "baseline");
    w.endObject();
    w.beginObject("variant");
    writeRun(w, variant, label);
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace critics::sim
