#include "sim/report.hh"

#include <sstream>

namespace critics::sim
{

namespace
{

class JsonWriter
{
  public:
    void
    open()
    {
        os_ << "{";
        first_ = true;
    }

    void
    close()
    {
        os_ << "}";
    }

    template <typename T>
    void
    field(const char *key, const T &value)
    {
        sep();
        os_ << "\"" << key << "\":" << value;
    }

    void
    field(const char *key, const std::string &value)
    {
        sep();
        os_ << "\"" << key << "\":\"" << value << "\"";
    }

    void
    raw(const char *key, const std::string &value)
    {
        sep();
        os_ << "\"" << key << "\":" << value;
    }

    std::string str() const { return os_.str(); }

  private:
    void
    sep()
    {
        if (!first_)
            os_ << ",";
        first_ = false;
    }

    std::ostringstream os_;
    bool first_ = true;
};

std::string
cpuJson(const cpu::CpuStats &stats)
{
    JsonWriter w;
    w.open();
    w.field("cycles", stats.cycles);
    w.field("committed", stats.committed);
    w.field("ipc", stats.ipc());
    w.field("stallForIIcache", stats.stallForIIcache);
    w.field("stallForIRedirect", stats.stallForIRedirect);
    w.field("stallForRd", stats.stallForRd);
    w.field("fracStallForI", stats.fracStallForI());
    w.field("fracStallForRd", stats.fracStallForRd());
    w.field("mispredicts", stats.mispredicts);
    w.field("condBranches", stats.condBranches);
    w.field("fetchWindows", stats.fetchWindows);
    w.field("fetchedBytes", stats.fetchedBytes);
    w.field("icacheMisses", stats.mem.icache.misses);
    w.field("icacheAccesses", stats.mem.icache.accesses);
    w.field("dcacheMisses", stats.mem.dcache.misses);
    w.field("l2Misses", stats.mem.l2.misses);
    w.field("dramReads", stats.mem.dram.reads);
    w.close();
    return w.str();
}

std::string
energyJson(const energy::EnergyBreakdown &e)
{
    JsonWriter w;
    w.open();
    w.field("cpuCore", e.cpuCore);
    w.field("icache", e.icache);
    w.field("dcache", e.dcache);
    w.field("l2", e.l2);
    w.field("dram", e.dram);
    w.field("socRest", e.socRest);
    w.field("total", e.total());
    w.close();
    return w.str();
}

} // namespace

std::string
toJson(const RunResult &result, const std::string &label)
{
    JsonWriter w;
    w.open();
    w.field("label", label);
    w.raw("cpu", cpuJson(result.cpu));
    w.raw("energy", energyJson(result.energy));
    w.field("selectionCoverage", result.selectionCoverage);
    w.field("staticThumbFraction", result.staticThumbFraction);
    w.field("dynThumbFraction", result.dynThumbFraction);
    w.field("chainsTransformed", result.pass.chainsTransformed);
    w.field("chainsAttempted", result.pass.chainsAttempted);
    w.field("instsConverted", result.pass.instsConverted);
    w.field("cdpsInserted", result.pass.cdpsInserted);
    w.field("localRenames", result.pass.localRenames);
    w.close();
    return w.str();
}

std::string
comparisonJson(const RunResult &baseline, const RunResult &variant,
               const std::string &label)
{
    JsonWriter w;
    w.open();
    w.field("label", label);
    w.field("speedup",
            static_cast<double>(baseline.cpu.cycles) /
                static_cast<double>(variant.cpu.cycles));
    w.field("energyRatio",
            variant.energy.total() / baseline.energy.total());
    w.raw("baseline", toJson(baseline, "baseline"));
    w.raw("variant", toJson(variant, label));
    w.close();
    return w.str();
}

} // namespace critics::sim
