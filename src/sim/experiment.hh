/**
 * @file
 * The top-level experiment facade.  An AppExperiment owns everything
 * derived from one workload profile: the synthesized program, the
 * recorded control path, the baseline trace, the offline criticality
 * profile (fanout, ICs, mined CritICs), and runs named design points
 * ("variants") against the same path so speedups are apples-to-apples.
 *
 * This is the public API the examples and every figure bench drive.
 */

#ifndef CRITICS_SIM_EXPERIMENT_HH
#define CRITICS_SIM_EXPERIMENT_HH

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_set>

#include "analysis/criticality.hh"
#include "analysis/miner.hh"
#include "compiler/passes.hh"
#include "cpu/cpu.hh"
#include "energy/energy.hh"
#include "program/emit.hh"
#include "program/walker.hh"
#include "workload/profile.hh"
#include "workload/synth.hh"

namespace critics::stats
{
class IntervalSeries;
class TraceEventWriter;
}

namespace critics::sim
{

struct ExperimentOptions
{
    /** Dynamic instructions per simulated sample. */
    std::uint64_t traceInsts = 600000;
    /** Fraction of each run treated as cache/predictor warmup. */
    double warmupFraction = 0.35;
    analysis::CriticalityConfig crit{};
    /** Fraction of the execution the offline profiler sees
     *  (Sec. IV-I: the headline results use 72%). */
    double profileFraction = 0.72;
};

/** Software design points. */
enum class Transform : std::uint8_t
{
    None,
    Hoist,          ///< Fig. 10: motion only
    CritIc,         ///< the proposed design
    CritIcIdeal,    ///< Fig. 10: no length/convertibility limits
    Opp16,          ///< Fig. 13
    Compress,       ///< Fig. 13 ([78])
    Opp16PlusCritIc ///< Fig. 13
};

/** One design point: a software transform + hardware knobs. */
struct Variant
{
    std::string label = "baseline";
    Transform transform = Transform::None;
    compiler::SwitchMode switchMode = compiler::SwitchMode::Cdp;
    unsigned maxChainLen = 5;
    unsigned exactChainLen = 0; ///< Fig. 12a: only exactly-n chains
    std::optional<double> profileFraction; ///< override (Fig. 12b)

    // Hardware mechanisms (Figs. 1a / 11).
    bool perfectBranch = false;
    bool efetch = false;
    bool icache4x = false;
    bool doubleFrontend = false;
    bool aluPrio = false;
    bool backendPrio = false;
    bool criticalLoadPrefetch = false;
};

/**
 * Observability hooks for one run.  Deliberately NOT part of Variant
 * or ExperimentOptions: hooks never change simulated behaviour, so
 * they must never enter a job's spec string (and thereby its cache
 * key) — a hooked run and a plain run are the same experiment.
 */
struct RunHooks
{
    /** Sample all stats every N committed instructions (0 = off). */
    std::uint64_t statsInterval = 0;
    stats::IntervalSeries *intervals = nullptr;
    /** Per-instruction pipeline spans (Chrome trace events). */
    stats::TraceEventWriter *trace = nullptr;
    std::uint64_t traceMaxInsts = 4096;
};

/** A variant's transformed binary plus the trace re-emitted from it
 *  along the experiment's recorded control path — the pair the
 *  trace-conformance checker (`critics_cli lint --trace`) proves
 *  consistent. */
struct MaterializedTransform
{
    program::Program prog;
    program::Trace trace;
    compiler::PassStats pass;
};

struct RunResult
{
    cpu::CpuStats cpu;
    energy::EnergyBreakdown energy;
    compiler::PassStats pass;
    double selectionCoverage = 0.0; ///< expected dyn coverage of chains
    double staticThumbFraction = 0.0;
    double dynThumbFraction = 0.0;  ///< Fig. 13b (excl. switch overhead)
};

/**
 * Memo key for transformed traces: exactly the Variant fields that can
 * change the transformed binary (and therefore the re-emitted trace),
 * with the effective profile fraction keyed on its exact bit pattern.
 * Hardware-only knobs are deliberately absent, so variants differing
 * only in hardware share one transformed trace.
 */
using TransformKey = std::tuple<std::uint8_t, std::uint8_t, unsigned,
                                unsigned, std::uint64_t>;

/** The key AppExperiment::run files a variant's transformed trace
 *  under; `defaultFraction` supplies the profile fraction when the
 *  variant carries no override. */
TransformKey transformMemoKey(const Variant &variant,
                              double defaultFraction);

class AppExperiment
{
  public:
    explicit AppExperiment(const workload::AppProfile &profile,
                           const ExperimentOptions &options = {});

    const workload::AppProfile &profile() const { return profile_; }
    const program::Program &baseProgram() const { return program_; }
    const program::Trace &baseTrace() const { return trace_; }
    const program::ControlPath &path() const { return path_; }

    // ---- Offline profile (lazy, cached) ----------------------------------
    // Thread-safe: the runner executes many variants of one app
    // concurrently against a single shared AppExperiment.  Each field
    // computes behind its own once-latch, so two variants needing
    // *different* products (say fanout and mining) overlap instead of
    // serializing behind one big lock.  References stay valid once
    // returned (the caches only grow).
    const analysis::FanoutInfo &fanout();
    const analysis::DynChains &chains();
    const analysis::ChainStats &chainStats();
    /** Mined unique CritICs at the experiment's profile fraction. */
    const analysis::MineResult &mined();
    const analysis::MineResult &minedAt(double fraction);
    const std::unordered_set<program::InstUid> &criticalSet();
    /** Dense uid -> location/convertibility cache of the baseline
     *  program, shared by every minedAt() fraction (the mining loop
     *  would otherwise hash-probe Program::locate per dynamic
     *  instruction). */
    const analysis::LocTable &locTable();

    // ---- Design-point runs -----------------------------------------------
    const RunResult &baseline();
    RunResult run(const Variant &variant);
    /** Same run with interval sampling / trace export attached. */
    RunResult run(const Variant &variant, const RunHooks &hooks);

    /**
     * Apply the variant's software transform to `prog` (a copy of
     * baseProgram()), exactly as run() does before simulating.  When
     * `audit` is given, each pass collects its verifier findings and
     * skip advisories there instead of panicking — the spine of
     * `critics_cli lint`.  Returns the pass stats; `selectionCoverage`
     * (optional) receives the chain selection's expected dynamic
     * coverage.
     */
    compiler::PassStats applyTransform(
        program::Program &prog, const Variant &variant,
        double *selectionCoverage = nullptr,
        verify::PassAudit *audit = nullptr);

    /**
     * Transform a copy of the baseline program for `variant` and
     * re-emit the trace along the experiment's recorded path, exactly
     * as run() does internally — the input pair for trace-conformance
     * checking.  Unmemoized: callers (lint) want a fresh audit per
     * variant.
     */
    MaterializedTransform materializeTransform(
        const Variant &variant, verify::PassAudit *audit = nullptr);

    /** baselineCycles / variantCycles. */
    double speedup(const RunResult &result);

  private:
    struct MinedSlot;     ///< per-fraction once-latch + result
    struct TransformSlot; ///< per-key once-latch + transformed trace

    /** Shared transformed trace (and pass products) for the variant's
     *  memo key, built at most once per AppExperiment. */
    std::shared_ptr<const TransformSlot>
    transformedTrace(const Variant &variant);

    /** Static thumb fraction of the *baseline* binary, computed once
     *  (Transform::None runs no longer copy the program to get it). */
    double baselineStaticThumbFraction();

    workload::AppProfile profile_;
    ExperimentOptions options_;
    program::Program program_;
    program::ControlPath path_;
    program::Trace trace_;

    // One once-latch per lazily derived field.  Dependencies only ever
    // point "down" (chainStats -> chains -> fanout), and a latch's
    // compute function takes no lock, so cross-field call_once nesting
    // cannot deadlock.
    std::once_flag fanoutOnce_;
    std::once_flag chainsOnce_;
    std::once_flag chainStatsOnce_;
    std::once_flag locTableOnce_;
    std::once_flag criticalSetOnce_;
    std::once_flag baselineOnce_;
    std::once_flag staticThumbOnce_;
    double staticThumb_ = 0.0;

    std::optional<analysis::FanoutInfo> fanout_;
    std::optional<analysis::DynChains> chains_;
    std::optional<analysis::ChainStats> chainStats_;
    std::optional<analysis::LocTable> locTable_;
    std::optional<std::unordered_set<program::InstUid>> criticalSet_;
    std::optional<RunResult> baseline_;

    // Keyed caches: the map mutex covers slot creation only; the
    // compute runs under the slot's own once-latch, so concurrent
    // misses on *different* keys build in parallel.
    std::mutex minedLock_;
    std::map<std::uint64_t, std::shared_ptr<MinedSlot>> mined_;
    std::mutex memoLock_;
    std::map<TransformKey, std::shared_ptr<TransformSlot>> memo_;
};

/** Render Table I (the baseline configuration) for bench headers. */
std::string describeBaselineConfig();

} // namespace critics::sim

#endif // CRITICS_SIM_EXPERIMENT_HH
