/**
 * @file
 * Named design points and app lists as *strings* — the vocabulary the
 * CLI flags, the serve protocol and the worker argv share.  One place
 * maps "critic-branchpair" to its Variant and "mobile" to its app
 * suite, so a spec that travels over a socket or an exec boundary
 * parses to exactly the grid the local CLI would have built.
 */

#ifndef CRITICS_SIM_VARIANTS_HH
#define CRITICS_SIM_VARIANTS_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workload/profile.hh"

namespace critics::sim
{

/** Split a comma list, dropping empty items ("a,,b" → {a, b}). */
std::vector<std::string> splitList(const std::string &text);

/** Every registered variant name, in presentation order. */
const std::vector<std::string> &allVariantNames();

/** Variant by name; nullopt when unknown (remote input — the serve
 *  protocol must reject bad specs, not kill the daemon). */
std::optional<Variant> tryParseVariant(const std::string &name);

/** Variant by name; fatal when unknown (CLI input). */
Variant parseVariant(const std::string &name);

/** An --apps/--variants value pair resolved to profiles+variants:
 *  apps is a suite name (mobile|android|specint|specfloat|all) or a
 *  comma list of app names; variants is "all" or a comma list.
 *  nullopt (with *error set) on any unknown name or an empty list. */
std::optional<std::vector<workload::AppProfile>>
tryParseApps(const std::string &value, std::string *error = nullptr);

std::optional<std::vector<Variant>>
tryParseVariants(const std::string &value, std::string *error = nullptr);

/** Fatal counterparts for CLI input. */
std::vector<workload::AppProfile> parseApps(const std::string &value);
std::vector<Variant> parseVariants(const std::string &value);

} // namespace critics::sim

#endif // CRITICS_SIM_VARIANTS_HH
