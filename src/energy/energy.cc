#include "energy/energy.hh"

#include "stats/registry.hh"

namespace critics::energy
{

void
EnergyBreakdown::registerStats(stats::StatRegistry &reg,
                               const std::string &prefix) const
{
    reg.addValue(prefix + ".cpuCore", cpuCore, "core energy (nJ)");
    reg.addValue(prefix + ".icache", icache, "i-cache energy (nJ)");
    reg.addValue(prefix + ".dcache", dcache, "d-cache energy (nJ)");
    reg.addValue(prefix + ".l2", l2, "L2 energy (nJ)");
    reg.addValue(prefix + ".dram", dram, "DRAM energy (nJ)");
    reg.addValue(prefix + ".socRest", socRest, "rest-of-SoC energy (nJ)");
    reg.addFormula(prefix + ".cpu", [this] { return cpu(); },
                   "core + L1s + L2 (nJ)");
    reg.addFormula(prefix + ".total", [this] { return total(); },
                   "whole-SoC energy (nJ)");
}

EnergyBreakdown
computeEnergy(const cpu::CpuStats &stats, const EnergyConfig &config)
{
    EnergyBreakdown e;
    const auto cycles = static_cast<double>(stats.cycles);
    // App work excludes CDP decoder directives (stats.all counts only
    // instructions that flow through the ROB), so re-encoded binaries
    // are charged for the same work as the baseline.
    const auto insts = static_cast<double>(stats.all.insts);

    e.cpuCore = config.cpuPerCycle * cycles +
                config.cpuPerInst * insts +
                config.cpuPerFetchByte *
                    static_cast<double>(stats.fetchedBytes);
    e.icache = config.icachePerAccess *
               static_cast<double>(stats.mem.icache.accesses);
    e.dcache = config.dcachePerAccess *
               static_cast<double>(stats.mem.dcache.accesses);
    e.l2 = config.l2PerAccess *
           static_cast<double>(stats.mem.l2.accesses);
    e.dram = config.dramPerRead *
                 static_cast<double>(stats.mem.dram.reads) +
             config.dramBackgroundPerCycle * cycles;
    e.socRest = config.socRestPerInst * insts;
    return e;
}

} // namespace critics::energy
