/**
 * @file
 * Activity-based SoC energy model (the role DRAMSim2 power + the
 * authors' SoC accounting play in Sec. IV-F).
 *
 * Components and what drives them:
 *   - CPU core:   per-cycle clocking/leakage + per-committed-instruction
 *                 execution energy + per-fetched-byte front-end energy
 *                 (the 16-bit format directly reduces fetched bytes);
 *   - i-cache:    per-access (per fetch window) energy;
 *   - d-cache/L2: per-access energy;
 *   - DRAM:       per-read energy + background power x time;
 *   - SoC rest:   display/radios/accelerators modeled as fixed energy
 *                 per unit of app work (the session length is
 *                 user-driven, so a faster CPU idles more rather than
 *                 shortening the session).
 *
 * Absolute joules are calibrated constants; the evaluation only uses
 * relative savings per component, as the paper does in Fig. 10c.
 */

#ifndef CRITICS_ENERGY_ENERGY_HH
#define CRITICS_ENERGY_ENERGY_HH

#include <string>

#include "cpu/cpu.hh"

namespace critics::stats
{
class StatRegistry;
}

namespace critics::energy
{

/** Per-event energies in nanojoules / per-cycle powers in nJ/cycle. */
struct EnergyConfig
{
    double cpuPerCycle = 0.110;
    double cpuPerInst = 0.055;
    double cpuPerFetchByte = 0.012;
    double icachePerAccess = 0.055;
    double dcachePerAccess = 0.050;
    double l2PerAccess = 0.45;
    double dramPerRead = 6.0;
    double dramBackgroundPerCycle = 0.030;
    /** Rest-of-SoC energy per committed instruction of app work. */
    double socRestPerInst = 0.55;
};

struct EnergyBreakdown
{
    double cpuCore = 0.0;
    double icache = 0.0;
    double dcache = 0.0;
    double l2 = 0.0;
    double dram = 0.0;
    double socRest = 0.0;

    /** CPU-side energy (core + L1s + L2), the paper's "CPU". */
    double
    cpu() const
    {
        return cpuCore + icache + dcache + l2;
    }

    double
    memory() const
    {
        return dram;
    }

    double
    total() const
    {
        return cpuCore + icache + dcache + l2 + dram + socRest;
    }

    /** Register views of these fields under `prefix` (e.g. "energy");
     *  this object must outlive the registry. */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix) const;
};

/** Compute the component energies of one run. */
EnergyBreakdown computeEnergy(const cpu::CpuStats &stats,
                              const EnergyConfig &config = EnergyConfig{});

} // namespace critics::energy

#endif // CRITICS_ENERGY_ENERGY_HH
