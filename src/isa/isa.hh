/**
 * @file
 * The modeled ARM-like ISA: operation classes, the 32-bit (A32-like) and
 * 16-bit (Thumb-like) instruction formats, register-file limits of the
 * 16-bit format, the convertibility predicate used by the compiler passes,
 * and the CDP format-switch command.
 *
 * The paper's mechanism depends only on a handful of ISA properties, all of
 * which are modeled faithfully here:
 *   - 32-bit instructions may be predicated; 16-bit ones may not;
 *   - the 16-bit format can name fewer registers (r0..r10 per the paper;
 *     in our bit layout the destination field is 4 bits covering r0..r10
 *     and the source fields are 3 bits covering r0..r7);
 *   - a CDP command with a 3-bit length argument switches the decoder to
 *     16-bit mode for the next l+1 instructions (so up to 9);
 *   - on stock hardware the switch needs an explicit branch pair instead.
 */

#ifndef CRITICS_ISA_ISA_HH
#define CRITICS_ISA_ISA_HH

#include <cstdint>
#include <string>

namespace critics::isa
{

/** Number of architected general-purpose registers in the 32-bit format. */
constexpr std::uint8_t NumArchRegs = 16;

/** Highest register encodable as a 16-bit destination (r0..r10 = 11
 *  registers, matching the paper's register-count argument). */
constexpr std::uint8_t ThumbMaxDstReg = 10;

/** Highest register encodable as a 16-bit source (3-bit field). */
constexpr std::uint8_t ThumbMaxSrcReg = 7;

/** Sentinel meaning "no register operand". */
constexpr std::uint8_t NoReg = 0xFF;

/** Maximum instructions covered by one CDP switch: l+1 with l in [0,7]. */
constexpr unsigned MaxCdpRun = 9;

/** Operation classes with distinct pipeline behaviour. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< single-cycle integer op
    IntMult,    ///< pipelined integer multiply
    IntDiv,     ///< unpipelined integer divide
    FloatAdd,   ///< FP add/sub/cvt
    FloatMul,   ///< FP multiply
    FloatDiv,   ///< unpipelined FP divide/sqrt
    Load,       ///< memory read; latency from the memory system
    Store,      ///< memory write; retires through the write buffer
    Branch,     ///< conditional/unconditional direct branch
    Call,       ///< function call (branch-and-link)
    Return,     ///< function return (indirect branch)
    Cdp,        ///< co-processor data op, repurposed as the format switch
    Nop,        ///< padding / alignment filler
    NumOpClasses
};

constexpr std::size_t NumOpClasses =
    static_cast<std::size_t>(OpClass::NumOpClasses);

/** Instruction encoding width. */
enum class Format : std::uint8_t
{
    Arm32,   ///< 4-byte encoding
    Thumb16, ///< 2-byte encoding
};

/** @return the human-readable mnemonic-ish name of an op class. */
const char *opClassName(OpClass op);

/** @return true for control-transfer classes (Branch/Call/Return).
 *  Inline: called per dynamic instruction in the fetch loop. */
constexpr bool
isControl(OpClass op)
{
    return op == OpClass::Branch || op == OpClass::Call ||
           op == OpClass::Return;
}

/** @return true for memory classes (Load/Store). */
constexpr bool
isMemory(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

namespace detail
{
/** Fixed execution latencies indexed by OpClass; keep in enum order. */
constexpr std::uint8_t ExecLatencyTable[NumOpClasses] = {
    1,  // IntAlu
    3,  // IntMult
    12, // IntDiv
    3,  // FloatAdd
    4,  // FloatMul
    16, // FloatDiv
    2,  // Load: L1 hit; the memory system overrides
    1,  // Store
    1,  // Branch
    1,  // Call
    1,  // Return
    1,  // Cdp
    1,  // Nop
};
} // namespace detail

/** Fixed execution latency in cycles for non-load classes.  Loads get
 *  their latency from the memory system instead.  Inline table lookup:
 *  called once per issue candidate in the simulator's inner loop. */
constexpr unsigned
execLatency(OpClass op)
{
    return detail::ExecLatencyTable[static_cast<std::size_t>(op)];
}

/** @return true if the op class has a 16-bit encoding at all.  Divides
 *  (integer and FP) have no Thumb encoding in our ISA, mirroring the
 *  long-latency corners of real Thumb. */
bool hasThumbEncoding(OpClass op);

/** Byte size of an instruction in the given format. */
constexpr unsigned
formatBytes(Format f)
{
    return f == Format::Arm32 ? 4u : 2u;
}

/**
 * Architectural operand/predication fields of one instruction, i.e.
 * everything the convertibility predicate and the encoders need.
 */
struct OperandInfo
{
    OpClass op = OpClass::IntAlu;
    std::uint8_t dst = NoReg;
    std::uint8_t src1 = NoReg;
    std::uint8_t src2 = NoReg;
    bool predicated = false;
    std::uint8_t imm = 0;
};

/**
 * The paper's convertibility test: an instruction can be re-encoded in
 * the 16-bit format iff it is unpredicated, its op class has a Thumb
 * encoding, and all its register operands fit the narrower fields.
 */
bool thumbConvertible(const OperandInfo &info);

/** If not convertible, a short reason string for diagnostics. */
std::string thumbRejectReason(const OperandInfo &info);

/**
 * Convertible *without any change*: additionally requires a 2-address
 * shape (dst == src1, or at most one source) and no immediate payload —
 * the 16-bit format has no immediate field.  This is the paper's
 * "representable in the 16-bit format without any change" predicate;
 * everything else would need the mov-expansion (the ~1.6x cost of
 * naive Thumb compilation).
 */
bool thumbDirectlyConvertible(const OperandInfo &info);

/**
 * Bit-level 32-bit encoding:
 *   [31:28] cond  (0xE = always / unpredicated)
 *   [27:20] opcode
 *   [19:16] dst   [15:12] src1   [11:8] src2
 *   [7:0]   imm8
 */
std::uint32_t encodeArm32(const OperandInfo &info);
OperandInfo decodeArm32(std::uint32_t word);

/**
 * Bit-level 16-bit encoding:
 *   [15:10] opcode  [9:6] dst  [5:3] src1  [2:0] src2
 * Missing operands encode as their own field's maximum value + the opcode
 * carries an operand-presence code, see encoding.cc.  Requires
 * thumbConvertible(info).
 */
std::uint16_t encodeThumb16(const OperandInfo &info);
OperandInfo decodeThumb16(std::uint16_t half);

/**
 * CDP format-switch command (16-bit slot of a 32-bit word):
 *   [15:10] CDP opcode  [9:4] coprocessor id (unused)  [3:0] l
 * The next l+1 instructions decode in 16-bit mode (l+1 <= 9, the
 * paper's "1 + 2^3" including the instruction sharing the CDP word).
 */
std::uint16_t encodeCdp(unsigned runLength);
/** @return run length l+1 encoded in a CDP halfword. */
unsigned decodeCdpRun(std::uint16_t half);

} // namespace critics::isa

#endif // CRITICS_ISA_ISA_HH
