#include "isa/isa.hh"

#include "support/logging.hh"

namespace critics::isa
{

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:   return "IntAlu";
      case OpClass::IntMult:  return "IntMult";
      case OpClass::IntDiv:   return "IntDiv";
      case OpClass::FloatAdd: return "FloatAdd";
      case OpClass::FloatMul: return "FloatMul";
      case OpClass::FloatDiv: return "FloatDiv";
      case OpClass::Load:     return "Load";
      case OpClass::Store:    return "Store";
      case OpClass::Branch:   return "Branch";
      case OpClass::Call:     return "Call";
      case OpClass::Return:   return "Return";
      case OpClass::Cdp:      return "Cdp";
      case OpClass::Nop:      return "Nop";
      default: return "?";
    }
}

bool
hasThumbEncoding(OpClass op)
{
    switch (op) {
      case OpClass::IntDiv:
      case OpClass::FloatDiv:
        return false;
      default:
        return true;
    }
}

bool
thumbConvertible(const OperandInfo &info)
{
    if (info.predicated)
        return false;
    if (!hasThumbEncoding(info.op))
        return false;
    if (info.dst != NoReg && info.dst > ThumbMaxDstReg)
        return false;
    if (info.src1 != NoReg && info.src1 > ThumbMaxSrcReg)
        return false;
    if (info.src2 != NoReg && info.src2 > ThumbMaxSrcReg)
        return false;
    return true;
}

bool
thumbDirectlyConvertible(const OperandInfo &info)
{
    if (!thumbConvertible(info))
        return false;
    if (info.imm != 0)
        return false;
    return info.src1 == NoReg || info.src2 == NoReg ||
           info.dst == info.src1;
}

std::string
thumbRejectReason(const OperandInfo &info)
{
    if (info.predicated)
        return "predicated";
    if (!hasThumbEncoding(info.op))
        return std::string("no 16-bit encoding for ") +
               opClassName(info.op);
    if (info.dst != NoReg && info.dst > ThumbMaxDstReg)
        return "dst register above r10";
    if ((info.src1 != NoReg && info.src1 > ThumbMaxSrcReg) ||
        (info.src2 != NoReg && info.src2 > ThumbMaxSrcReg))
        return "source register above r7";
    return "";
}

namespace
{

// Opcode-space layout.  The 8-bit A32 opcode field and the 6-bit Thumb
// opcode field both carry the op class plus a 2-bit operand-presence
// code so decode can restore NoReg operands exactly.
constexpr unsigned
presenceCode(const OperandInfo &info)
{
    unsigned code = 0;
    if (info.src1 != NoReg)
        code |= 1u;
    if (info.src2 != NoReg)
        code |= 2u;
    return code;
}

constexpr std::uint8_t CdpThumbOpcode = 0x3F; // all-ones 6-bit opcode

} // namespace

std::uint32_t
encodeArm32(const OperandInfo &info)
{
    const std::uint32_t cond = info.predicated ? 0x1u : 0xEu;
    const std::uint32_t opcode =
        (static_cast<std::uint32_t>(info.op) << 3) | presenceCode(info) |
        ((info.dst != NoReg ? 1u : 0u) << 2);
    const std::uint32_t dst = info.dst == NoReg ? 0xF : info.dst;
    const std::uint32_t src1 = info.src1 == NoReg ? 0xF : info.src1;
    const std::uint32_t src2 = info.src2 == NoReg ? 0xF : info.src2;
    return (cond << 28) | ((opcode & 0xFF) << 20) | ((dst & 0xF) << 16) |
           ((src1 & 0xF) << 12) | ((src2 & 0xF) << 8) | info.imm;
}

OperandInfo
decodeArm32(std::uint32_t word)
{
    OperandInfo info;
    const std::uint32_t cond = word >> 28;
    const std::uint32_t opcode = (word >> 20) & 0xFF;
    info.predicated = cond != 0xE;
    info.op = static_cast<OpClass>(opcode >> 3);
    const bool has_dst = (opcode >> 2) & 1u;
    const unsigned presence = opcode & 0x3;
    info.dst = has_dst ? static_cast<std::uint8_t>((word >> 16) & 0xF)
                       : NoReg;
    info.src1 = (presence & 1u)
        ? static_cast<std::uint8_t>((word >> 12) & 0xF) : NoReg;
    info.src2 = (presence & 2u)
        ? static_cast<std::uint8_t>((word >> 8) & 0xF) : NoReg;
    info.imm = static_cast<std::uint8_t>(word & 0xFF);
    return info;
}

std::uint16_t
encodeThumb16(const OperandInfo &info)
{
    critics_assert(thumbConvertible(info),
                   "encodeThumb16 on non-convertible instruction: ",
                   thumbRejectReason(info));
    // 6-bit opcode: 4-bit op class + presence code.  Op classes with a
    // Thumb encoding all fit in 4 bits with the all-ones code reserved
    // for CDP.
    const std::uint16_t cls = static_cast<std::uint16_t>(info.op) & 0xF;
    const std::uint16_t opcode =
        static_cast<std::uint16_t>((cls << 2) | presenceCode(info));
    critics_assert(opcode != CdpThumbOpcode, "opcode collides with CDP");
    const std::uint16_t dst = info.dst == NoReg ? 0xF : info.dst;
    const std::uint16_t src1 = info.src1 == NoReg ? 0x7 : info.src1;
    const std::uint16_t src2 = info.src2 == NoReg ? 0x7 : info.src2;
    return static_cast<std::uint16_t>((opcode << 10) | ((dst & 0xF) << 6) |
                                      ((src1 & 0x7) << 3) | (src2 & 0x7));
}

OperandInfo
decodeThumb16(std::uint16_t half)
{
    OperandInfo info;
    const unsigned opcode = (half >> 10) & 0x3F;
    critics_assert(opcode != CdpThumbOpcode,
                   "decodeThumb16 called on a CDP halfword");
    info.op = static_cast<OpClass>((opcode >> 2) & 0xF);
    const unsigned presence = opcode & 0x3;
    const std::uint8_t dst = static_cast<std::uint8_t>((half >> 6) & 0xF);
    info.dst = dst > ThumbMaxDstReg ? NoReg : dst;
    info.src1 = (presence & 1u)
        ? static_cast<std::uint8_t>((half >> 3) & 0x7) : NoReg;
    info.src2 = (presence & 2u)
        ? static_cast<std::uint8_t>(half & 0x7) : NoReg;
    info.predicated = false;
    return info;
}

std::uint16_t
encodeCdp(unsigned runLength)
{
    critics_assert(runLength >= 1 && runLength <= MaxCdpRun,
                   "CDP run length out of range: ", runLength);
    const std::uint16_t l = static_cast<std::uint16_t>(runLength - 1);
    return static_cast<std::uint16_t>((CdpThumbOpcode << 10) |
                                      (l & 0xF));
}

unsigned
decodeCdpRun(std::uint16_t half)
{
    critics_assert(((half >> 10) & 0x3F) == CdpThumbOpcode,
                   "not a CDP halfword");
    return (half & 0xF) + 1;
}

} // namespace critics::isa
