/**
 * @file
 * Shared plumbing for the figure benches.  Every bench declares its
 * design-point sweep as a JobSpec grid (apps × variants) and hands it
 * to the shared runner::Runner, which serves unchanged specs from the
 * persistent result cache, dedups identical jobs, shares one
 * AppExperiment per app and isolates per-job failures.  Suite timing
 * comes out of the run manifest in one format for all benches.
 */

#ifndef CRITICS_BENCH_COMMON_HH
#define CRITICS_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runner/orchestrator.hh"
#include "sim/experiment.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/table.hh"

namespace critics::bench
{

/** Default per-app sample size for bench runs. */
inline sim::ExperimentOptions
benchOptions()
{
    sim::ExperimentOptions opt;
    opt.traceInsts = 400000;
    return opt;
}

/** Print the standard bench header with Table I. */
inline void
header(const char *figure, const char *what)
{
    std::printf("==============================================="
                "=============================\n");
    std::printf("CritICs reproduction — %s: %s\n", figure, what);
    std::printf("==============================================="
                "=============================\n");
    std::printf("%s\n", sim::describeBaselineConfig().c_str());
}

/** Shorthand for building labelled variants inline. */
inline sim::Variant
variant(const std::string &label,
        sim::Transform transform = sim::Transform::None)
{
    sim::Variant v;
    v.label = label;
    v.transform = transform;
    return v;
}

/**
 * One bench sweep: the (apps × variants) grid and its outcomes.
 * Jobs are laid out app-major; by convention variants[0] is the
 * baseline when the bench needs speedups.
 */
struct Sweep
{
    std::vector<workload::AppProfile> apps;
    std::vector<sim::Variant> variants;
    sim::ExperimentOptions options;
    runner::BatchResult batch;

    std::size_t
    idx(std::size_t app, std::size_t var) const
    {
        return app * variants.size() + var;
    }

    const sim::RunResult &
    at(std::size_t app, std::size_t var) const
    {
        return batch.result(idx(app, var));
    }

    /** Speedup of variant `var` over variant `baseVar` for one app. */
    double
    speedup(std::size_t app, std::size_t var,
            std::size_t baseVar = 0) const
    {
        return batch.speedup(idx(app, baseVar), idx(app, var));
    }
};

/**
 * Declare and run one sweep through the shared runner.  Prints the
 * manifest summary line (jobs, cache hits, wall time, sim throughput)
 * so every bench reports timing the same way.
 */
inline Sweep
runSweep(const std::string &name,
         std::vector<workload::AppProfile> apps,
         std::vector<sim::Variant> variants,
         const sim::ExperimentOptions &options = benchOptions())
{
    Sweep sweep;
    sweep.apps = std::move(apps);
    sweep.variants = std::move(variants);
    sweep.options = options;
    sweep.batch = runner::sharedRunner().run(
        name, runner::makeGrid(sweep.apps, sweep.variants, options));
    std::printf("%s\n", sweep.batch.manifest.summaryLine().c_str());
    return sweep;
}

/**
 * Per-app wall time of a batch, from the manifest (simulated jobs
 * only; cache hits cost nothing and are reported as such).
 */
inline Table
timingTable(const runner::BatchResult &batch)
{
    std::map<std::string, std::pair<double, std::size_t>> perApp;
    std::vector<std::string> order;
    for (const auto &job : batch.manifest.jobs) {
        if (perApp.find(job.app) == perApp.end())
            order.push_back(job.app);
        auto &[seconds, cached] = perApp[job.app];
        seconds += job.wallSeconds;
        cached += job.fromCache ? 1 : 0;
    }
    Table table({"app", "wall (s)", "cached jobs"});
    for (const auto &app : order) {
        const auto &[seconds, cached] = perApp[app];
        table.addRow({app, fmt(seconds, 2),
                      fmt(static_cast<double>(cached), 0)});
    }
    return table;
}

/**
 * The shared AppExperiments for offline-analysis statistics (chain
 * geometry, fanout fractions) that are not cacheable RunResults.
 * Construction happens in parallel and is shared with any jobs the
 * runner executes for the same profile+options.
 */
inline std::vector<std::shared_ptr<sim::AppExperiment>>
experiments(const std::vector<workload::AppProfile> &profiles,
            const sim::ExperimentOptions &options = benchOptions())
{
    std::vector<std::shared_ptr<sim::AppExperiment>> exps(
        profiles.size());
    parallelFor(profiles.size(), [&](std::size_t i) {
        exps[i] =
            runner::sharedRunner().experiment(profiles[i], options);
    });
    return exps;
}

/** Geometric mean of speedups (the paper's suite averages). */
inline double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double logSum = 0.0;
    for (const double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace critics::bench

#endif // CRITICS_BENCH_COMMON_HH
