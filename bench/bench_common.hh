/**
 * @file
 * Shared plumbing for the figure benches: suite loops with parallel
 * per-app experiments, uniform headers, and the geometric-mean helpers
 * the paper's "average speedup" rows use.
 */

#ifndef CRITICS_BENCH_COMMON_HH
#define CRITICS_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/table.hh"

namespace critics::bench
{

/** Default per-app sample size for bench runs. */
inline sim::ExperimentOptions
benchOptions()
{
    sim::ExperimentOptions opt;
    opt.traceInsts = 400000;
    return opt;
}

/** Print the standard bench header with Table I. */
inline void
header(const char *figure, const char *what)
{
    std::printf("==============================================="
                "=============================\n");
    std::printf("CritICs reproduction — %s: %s\n", figure, what);
    std::printf("==============================================="
                "=============================\n");
    std::printf("%s\n", sim::describeBaselineConfig().c_str());
}

/** One experiment per profile, constructed in parallel. */
inline std::vector<std::unique_ptr<sim::AppExperiment>>
makeExperiments(const std::vector<workload::AppProfile> &profiles,
                const sim::ExperimentOptions &options = benchOptions())
{
    std::vector<std::unique_ptr<sim::AppExperiment>> exps(
        profiles.size());
    parallelFor(profiles.size(), [&](std::size_t i) {
        exps[i] = std::make_unique<sim::AppExperiment>(profiles[i],
                                                       options);
        exps[i]->baseline(); // warm the baseline in parallel too
    });
    return exps;
}

/** Geometric mean of speedups (the paper's suite averages). */
inline double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double logSum = 0.0;
    for (const double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace critics::bench

#endif // CRITICS_BENCH_COMMON_HH
