/**
 * @file
 * Ablations for the design choices DESIGN.md calls out (beyond the
 * paper's own Fig. 12 sensitivity study):
 *
 *   - the CritIC criticality threshold (the paper fixes avg fanout > 8
 *     and reports other values "result in slight performance
 *     degradations");
 *   - the fanout window (we use the 128-entry ROB size);
 *   - the chain-length cap of the realistic design (5);
 *   - profile-guided selection vs converting *random* chains of the
 *     same volume (is criticality targeting doing real work, or is any
 *     conversion of equal volume as good?).
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

namespace
{

const std::vector<const char *> AblationApps{
    "Acrobat", "Office", "Facebook", "Youtube", "Music"};

std::vector<workload::AppProfile>
apps()
{
    std::vector<workload::AppProfile> profiles;
    for (const char *name : AblationApps)
        profiles.push_back(workload::findApp(name));
    return profiles;
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Ablations", "CritIC design-choice sweeps");

    // ---- 1. Chain criticality threshold --------------------------------
    // Each threshold changes ExperimentOptions, so each is its own
    // batch (a distinct spec hash — and a distinct shared experiment).
    {
        Table table({"avg-fanout threshold", "speedup", "coverage",
                     "unique CritICs"});
        for (const double threshold : {4.0, 6.0, 8.0, 12.0, 16.0}) {
            sim::ExperimentOptions opt = benchOptions();
            opt.crit.chainCritThreshold = threshold;
            const auto sweep = runSweep(
                "ablation-threshold" +
                    std::to_string(static_cast<int>(threshold)),
                apps(),
                {variant("baseline"),
                 variant("critic", sim::Transform::CritIc)},
                opt);
            std::vector<double> speed(sweep.apps.size()),
                cover(sweep.apps.size());
            for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
                speed[i] = sweep.speedup(i, 1);
                cover[i] = sweep.at(i, 1).selectionCoverage;
            }
            std::size_t unique = 0;
            for (auto &exp : experiments(sweep.apps, opt))
                unique += exp->mined().chains.size();
            table.addRow({fmt(threshold, 0), gainPct(geoMean(speed)),
                          pct(mean(cover)), fmt(double(unique), 0)});
        }
        std::printf("Ablation 1 — CritIC avg-fanout threshold "
                    "(paper fixes 8)\n%s\n", table.render().c_str());
    }

    // ---- 2. Fanout window ------------------------------------------------
    {
        Table table({"window (insts)", "critical fraction", "speedup"});
        for (const unsigned window : {32u, 64u, 128u, 256u}) {
            sim::ExperimentOptions opt = benchOptions();
            opt.crit.window = window;
            const auto sweep = runSweep(
                "ablation-window" + std::to_string(window), apps(),
                {variant("baseline"),
                 variant("critic", sim::Transform::CritIc)},
                opt);
            std::vector<double> speed(sweep.apps.size()),
                crit(sweep.apps.size());
            auto exps = experiments(sweep.apps, opt);
            for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
                speed[i] = sweep.speedup(i, 1);
                crit[i] = exps[i]->fanout().critFraction();
            }
            table.addRow({fmt(window, 0), pct(mean(crit)),
                          gainPct(geoMean(speed))});
        }
        std::printf("Ablation 2 — dependence window for fanout "
                    "counting (ROB-sized = 128)\n%s\n",
                    table.render().c_str());
    }

    // ---- 3. Chain-length cap ---------------------------------------------
    {
        const std::vector<unsigned> caps{2, 3, 5, 7, 9};
        std::vector<sim::Variant> variants{variant("baseline")};
        for (const unsigned cap : caps) {
            sim::Variant v = variant("critic-cap" + std::to_string(cap),
                                     sim::Transform::CritIc);
            v.maxChainLen = cap;
            variants.push_back(v);
        }
        const auto sweep = runSweep("ablation-cap", apps(), variants);
        Table table({"max chain length", "speedup", "coverage"});
        for (std::size_t c = 0; c < caps.size(); ++c) {
            std::vector<double> speed(sweep.apps.size()),
                cover(sweep.apps.size());
            for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
                speed[i] = sweep.speedup(i, 1 + c);
                cover[i] = sweep.at(i, 1 + c).selectionCoverage;
            }
            table.addRow({fmt(caps[c], 0), gainPct(geoMean(speed)),
                          pct(mean(cover))});
        }
        std::printf("Ablation 3 — cumulative chain-length cap "
                    "(paper uses up to 5)\n%s\n", table.render().c_str());
    }

    // ---- 4. Criticality targeting vs equal-volume random selection -------
    {
        sim::Variant top = variant("critic", sim::Transform::CritIc);
        // "Random": invert the coverage ranking by profiling only a
        // sliver of the execution — the selection quality collapses
        // while the mechanism stays identical.
        sim::Variant sliver =
            variant("critic-sliver", sim::Transform::CritIc);
        sliver.profileFraction = 0.05;
        const auto sweep = runSweep("ablation-selection", apps(),
                                    {variant("baseline"), top, sliver});

        Table table({"selection policy", "speedup", "dyn 16-bit"});
        std::vector<double> speedTop(sweep.apps.size()),
            convTop(sweep.apps.size()), speedRnd(sweep.apps.size()),
            convRnd(sweep.apps.size());
        for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
            speedTop[i] = sweep.speedup(i, 1);
            convTop[i] = sweep.at(i, 1).dynThumbFraction;
            speedRnd[i] = sweep.speedup(i, 2);
            convRnd[i] = sweep.at(i, 2).dynThumbFraction;
        }
        table.addRow({"top-coverage CritICs (72% profile)",
                      gainPct(geoMean(speedTop)), pct(mean(convTop))});
        table.addRow({"5% profile sliver", gainPct(geoMean(speedRnd)),
                      pct(mean(convRnd))});
        std::printf("Ablation 4 — does profile quality matter?\n%s\n",
                    table.render().c_str());
    }
    return 0;
}
