/**
 * @file
 * Ablations for the design choices DESIGN.md calls out (beyond the
 * paper's own Fig. 12 sensitivity study):
 *
 *   - the CritIC criticality threshold (the paper fixes avg fanout > 8
 *     and reports other values "result in slight performance
 *     degradations");
 *   - the fanout window (we use the 128-entry ROB size);
 *   - the chain-length cap of the realistic design (5);
 *   - profile-guided selection vs converting *random* chains of the
 *     same volume (is criticality targeting doing real work, or is any
 *     conversion of equal volume as good?).
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

namespace
{

const std::vector<const char *> AblationApps{
    "Acrobat", "Office", "Facebook", "Youtube", "Music"};

std::vector<workload::AppProfile>
apps()
{
    std::vector<workload::AppProfile> profiles;
    for (const char *name : AblationApps)
        profiles.push_back(workload::findApp(name));
    return profiles;
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Ablations", "CritIC design-choice sweeps");

    // ---- 1. Chain criticality threshold --------------------------------
    {
        Table table({"avg-fanout threshold", "speedup", "coverage",
                     "unique CritICs"});
        for (const double threshold : {4.0, 6.0, 8.0, 12.0, 16.0}) {
            sim::ExperimentOptions opt = benchOptions();
            opt.crit.chainCritThreshold = threshold;
            auto exps = makeExperiments(apps(), opt);
            std::vector<double> speed(exps.size()), cover(exps.size());
            std::size_t unique = 0;
            parallelFor(exps.size(), [&](std::size_t i) {
                sim::Variant v;
                v.transform = sim::Transform::CritIc;
                const auto r = exps[i]->run(v);
                speed[i] = exps[i]->speedup(r);
                cover[i] = r.selectionCoverage;
            });
            for (auto &exp : exps)
                unique += exp->mined().chains.size();
            table.addRow({fmt(threshold, 0), gainPct(geoMean(speed)),
                          pct(mean(cover)), fmt(double(unique), 0)});
        }
        std::printf("Ablation 1 — CritIC avg-fanout threshold "
                    "(paper fixes 8)\n%s\n", table.render().c_str());
    }

    // ---- 2. Fanout window ------------------------------------------------
    {
        Table table({"window (insts)", "critical fraction", "speedup"});
        for (const unsigned window : {32u, 64u, 128u, 256u}) {
            sim::ExperimentOptions opt = benchOptions();
            opt.crit.window = window;
            auto exps = makeExperiments(apps(), opt);
            std::vector<double> speed(exps.size()), crit(exps.size());
            parallelFor(exps.size(), [&](std::size_t i) {
                sim::Variant v;
                v.transform = sim::Transform::CritIc;
                speed[i] = exps[i]->speedup(exps[i]->run(v));
                crit[i] = exps[i]->fanout().critFraction();
            });
            table.addRow({fmt(window, 0), pct(mean(crit)),
                          gainPct(geoMean(speed))});
        }
        std::printf("Ablation 2 — dependence window for fanout "
                    "counting (ROB-sized = 128)\n%s\n",
                    table.render().c_str());
    }

    // ---- 3. Chain-length cap ---------------------------------------------
    {
        auto exps = makeExperiments(apps());
        Table table({"max chain length", "speedup", "coverage"});
        for (const unsigned cap : {2u, 3u, 5u, 7u, 9u}) {
            std::vector<double> speed(exps.size()), cover(exps.size());
            parallelFor(exps.size(), [&](std::size_t i) {
                sim::Variant v;
                v.transform = sim::Transform::CritIc;
                v.maxChainLen = cap;
                const auto r = exps[i]->run(v);
                speed[i] = exps[i]->speedup(r);
                cover[i] = r.selectionCoverage;
            });
            table.addRow({fmt(cap, 0), gainPct(geoMean(speed)),
                          pct(mean(cover))});
        }
        std::printf("Ablation 3 — cumulative chain-length cap "
                    "(paper uses up to 5)\n%s\n", table.render().c_str());
    }

    // ---- 4. Criticality targeting vs equal-volume random selection -------
    {
        auto exps = makeExperiments(apps());
        Table table({"selection policy", "speedup", "dyn 16-bit"});
        std::vector<double> speedTop(exps.size()), convTop(exps.size());
        std::vector<double> speedRnd(exps.size()), convRnd(exps.size());
        parallelFor(exps.size(), [&](std::size_t i) {
            auto &exp = *exps[i];
            sim::Variant top;
            top.transform = sim::Transform::CritIc;
            const auto rTop = exp.run(top);
            speedTop[i] = exp.speedup(rTop);
            convTop[i] = rTop.dynThumbFraction;
            // "Random": invert the coverage ranking by profiling only a
            // sliver of the execution — the selection quality collapses
            // while the mechanism stays identical.
            sim::Variant sliver;
            sliver.transform = sim::Transform::CritIc;
            sliver.profileFraction = 0.05;
            const auto rRnd = exp.run(sliver);
            speedRnd[i] = exp.speedup(rRnd);
            convRnd[i] = rRnd.dynThumbFraction;
        });
        table.addRow({"top-coverage CritICs (72% profile)",
                      gainPct(geoMean(speedTop)), pct(mean(convTop))});
        table.addRow({"5% profile sliver", gainPct(geoMean(speedRnd)),
                      pct(mean(convRnd))});
        std::printf("Ablation 4 — does profile quality matter?\n%s\n",
                    table.render().c_str());
    }
    return 0;
}
