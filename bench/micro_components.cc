/**
 * @file
 * google-benchmark microbenchmarks of the reproduction's substrates:
 * cache/DRAM/BPU throughput, trace emission, fanout profiling, chain
 * extraction/mining and the cycle-level pipeline itself.  These guard
 * the simulator's own performance (the whole evaluation re-runs dozens
 * of full simulations).
 */

#include <benchmark/benchmark.h>

#include "analysis/criticality.hh"
#include "analysis/miner.hh"
#include "bpu/bpu.hh"
#include "cpu/cpu.hh"
#include "mem/hierarchy.hh"
#include "program/emit.hh"
#include "program/walker.hh"
#include "sim/experiment.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "workload/synth.hh"

using namespace critics;

namespace
{

workload::AppProfile
smallMobile()
{
    auto profile = workload::findApp("Acrobat");
    profile.numFunctions = 160;
    profile.dispatchTargets = 32;
    return profile;
}

struct Fixture
{
    program::Program prog;
    program::ControlPath path;
    program::Trace trace;

    Fixture()
    {
        setQuiet(true);
        prog = workload::synthesize(smallMobile());
        Rng rng(1);
        program::WalkLimits limits;
        limits.targetInsts = 100000;
        path = program::walkProgram(prog, rng, limits);
        trace = program::emitTrace(prog, path);
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

} // namespace

static void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache({"c", 32u << 10, 2, 64, 2});
    Rng rng(7);
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        const auto addr = rng.below(1u << 20);
        auto res = cache.access(addr, ++cycle);
        if (!res.hit)
            cache.fill(addr, cycle + 12);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

static void
BM_DramRead(benchmark::State &state)
{
    mem::Dram dram;
    Rng rng(9);
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        cycle += 50;
        benchmark::DoNotOptimize(dram.read(rng.below(1u << 28), cycle));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRead);

static void
BM_BranchPredictor(benchmark::State &state)
{
    bpu::TwoLevelPredictor bp;
    Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bp.predictAndTrain(0x1000 + 4 * (rng.below(512)),
                               rng.chance(0.7)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

static void
BM_TraceEmission(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        auto trace = program::emitTrace(f.prog, f.path);
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(state.iterations() * f.trace.size());
}
BENCHMARK(BM_TraceEmission);

static void
BM_FanoutProfile(benchmark::State &state)
{
    auto &f = fixture();
    analysis::CriticalityConfig cfg;
    for (auto _ : state) {
        auto info = analysis::computeFanout(f.trace, cfg);
        benchmark::DoNotOptimize(info.critCount);
    }
    state.SetItemsProcessed(state.iterations() * f.trace.size());
}
BENCHMARK(BM_FanoutProfile);

static void
BM_ChainExtraction(benchmark::State &state)
{
    auto &f = fixture();
    analysis::CriticalityConfig cfg;
    const auto info = analysis::computeFanout(f.trace, cfg);
    for (auto _ : state) {
        auto chains = analysis::extractChains(f.trace, info, cfg);
        benchmark::DoNotOptimize(chains.size());
    }
    state.SetItemsProcessed(state.iterations() * f.trace.size());
}
BENCHMARK(BM_ChainExtraction);

static void
BM_CritIcMining(benchmark::State &state)
{
    auto &f = fixture();
    analysis::CriticalityConfig cfg;
    const auto info = analysis::computeFanout(f.trace, cfg);
    const auto chains = analysis::extractChains(f.trace, info, cfg);
    for (auto _ : state) {
        auto mined = analysis::mineCritIcs(f.trace, f.prog, chains,
                                           info, cfg, 1.0);
        benchmark::DoNotOptimize(mined.chains.size());
    }
    state.SetItemsProcessed(state.iterations() * f.trace.size());
}
BENCHMARK(BM_CritIcMining);

static void
BM_PipelineSimulation(benchmark::State &state)
{
    auto &f = fixture();
    cpu::CpuConfig cfg;
    mem::MemConfig memCfg;
    for (auto _ : state) {
        bpu::TwoLevelPredictor bp;
        auto stats = cpu::runTrace(f.trace, cfg, memCfg, bp);
        benchmark::DoNotOptimize(stats.cycles);
    }
    state.SetItemsProcessed(state.iterations() * f.trace.size());
}
BENCHMARK(BM_PipelineSimulation);

BENCHMARK_MAIN();
