/**
 * @file
 * Fig. 11 reproduction: CritIC versus conventional hardware fetch/back
 * -end mechanisms, alone and combined.
 *
 * Mechanisms: 2xFD (doubled fetch/decode), 4x i-cache, EFetch [71],
 * PerfectBr, BackendPrio [32][33], and AllHW (everything).  Paper:
 * individual mechanisms give ~4–12%, AllHW 23.2%; CritIC (software
 * only) beats each individual mechanism and composes: AllHW+CritIC
 * reaches 31%.  (b) Each mechanism moves only one of the two stall
 * categories; CritIC moves both.
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

namespace
{

struct Mechanism
{
    const char *name;
    sim::Variant hw;
};

sim::Variant
withCritIc(sim::Variant v)
{
    v.label += "+critic";
    v.transform = sim::Transform::CritIc;
    return v;
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Fig. 11", "hardware mechanisms vs (and with) CritIC");

    std::vector<Mechanism> mechs;
    {
        sim::Variant v = variant("none");
        mechs.push_back({"none (CritIC only)", v});
        v = variant("2xfd");
        v.doubleFrontend = true;
        mechs.push_back({"2xFD", v});
        v = variant("icache4x");
        v.icache4x = true;
        mechs.push_back({"4x i-cache", v});
        v = variant("efetch");
        v.efetch = true;
        mechs.push_back({"EFetch", v});
        v = variant("perfectbr");
        v.perfectBranch = true;
        mechs.push_back({"PerfectBr", v});
        v = variant("backendprio");
        v.backendPrio = true;
        mechs.push_back({"BackendPrio", v});
        v = variant("allhw");
        v.doubleFrontend = true;
        v.icache4x = true;
        v.efetch = true;
        v.perfectBranch = true;
        v.backendPrio = true;
        mechs.push_back({"AllHW", v});
    }

    // One grid: baseline + {hw, hw+critic} per mechanism.  "none" hw
    // is the baseline itself, so the runner dedups that job.
    std::vector<sim::Variant> variants{variant("baseline")};
    for (const auto &mech : mechs) {
        variants.push_back(mech.hw);
        variants.push_back(withCritIc(mech.hw));
    }
    const auto sweep =
        runSweep("fig11", workload::mobileApps(), variants);

    Table fig11a({"mechanism", "hw only", "hw + CritIC"});
    Table fig11b({"mechanism", "dF.StallForI", "dF.StallForR+D"});

    for (std::size_t m = 0; m < mechs.size(); ++m) {
        const std::size_t hwVar = 1 + 2 * m;
        const std::size_t comboVar = hwVar + 1;
        std::vector<double> hwOnly(sweep.apps.size()),
            combined(sweep.apps.size());
        std::vector<double> dI(sweep.apps.size()),
            dRd(sweep.apps.size());
        for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
            const auto &base = sweep.at(i, 0).cpu;
            const auto &hw = sweep.at(i, hwVar);
            hwOnly[i] = sweep.speedup(i, hwVar);
            combined[i] = sweep.speedup(i, comboVar);
            const auto baseCyc = static_cast<double>(base.cycles);
            dI[i] = (static_cast<double>(base.stallForIIcache +
                                         base.stallForIRedirect) -
                     static_cast<double>(hw.cpu.stallForIIcache +
                                         hw.cpu.stallForIRedirect)) /
                    baseCyc;
            dRd[i] = (static_cast<double>(base.stallForRd) -
                      static_cast<double>(hw.cpu.stallForRd)) /
                     baseCyc;
        }
        const bool isNone =
            std::string(mechs[m].name) == "none (CritIC only)";
        fig11a.addRow({mechs[m].name,
                       isNone ? std::string("baseline")
                              : gainPct(geoMean(hwOnly)),
                       gainPct(geoMean(combined))});
        if (!isNone)
            fig11b.addRow({mechs[m].name, pct(mean(dI)),
                           pct(mean(dRd))});
    }

    std::printf("Fig. 11a — speedup over baseline "
                "(geomean over the ten apps)\n%s\n",
                fig11a.render().c_str());
    std::printf("Fig. 11b — stall-category movement of each hardware "
                "mechanism (baseline minus mechanism)\n%s\n",
                fig11b.render().c_str());
    return 0;
}
