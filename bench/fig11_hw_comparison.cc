/**
 * @file
 * Fig. 11 reproduction: CritIC versus conventional hardware fetch/back
 * -end mechanisms, alone and combined.
 *
 * Mechanisms: 2xFD (doubled fetch/decode), 4x i-cache, EFetch [71],
 * PerfectBr, BackendPrio [32][33], and AllHW (everything).  Paper:
 * individual mechanisms give ~4–12%, AllHW 23.2%; CritIC (software
 * only) beats each individual mechanism and composes: AllHW+CritIC
 * reaches 31%.  (b) Each mechanism moves only one of the two stall
 * categories; CritIC moves both.
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

namespace
{

struct Mechanism
{
    const char *name;
    sim::Variant hw;
};

sim::Variant
withCritIc(sim::Variant v)
{
    v.transform = sim::Transform::CritIc;
    return v;
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Fig. 11", "hardware mechanisms vs (and with) CritIC");

    std::vector<Mechanism> mechs;
    {
        sim::Variant v;
        mechs.push_back({"none (CritIC only)", v});
        v = {};
        v.doubleFrontend = true;
        mechs.push_back({"2xFD", v});
        v = {};
        v.icache4x = true;
        mechs.push_back({"4x i-cache", v});
        v = {};
        v.efetch = true;
        mechs.push_back({"EFetch", v});
        v = {};
        v.perfectBranch = true;
        mechs.push_back({"PerfectBr", v});
        v = {};
        v.backendPrio = true;
        mechs.push_back({"BackendPrio", v});
        v = {};
        v.doubleFrontend = true;
        v.icache4x = true;
        v.efetch = true;
        v.perfectBranch = true;
        v.backendPrio = true;
        mechs.push_back({"AllHW", v});
    }

    const auto apps = workload::mobileApps();
    auto exps = makeExperiments(apps);

    Table fig11a({"mechanism", "hw only", "hw + CritIC"});
    Table fig11b({"mechanism", "dF.StallForI", "dF.StallForR+D"});

    for (const auto &mech : mechs) {
        std::vector<double> hwOnly(exps.size()), combined(exps.size());
        std::vector<double> dI(exps.size()), dRd(exps.size());
        parallelFor(exps.size(), [&](std::size_t i) {
            auto &exp = *exps[i];
            const auto &base = exp.baseline().cpu;
            const auto hw = exp.run(mech.hw);
            hwOnly[i] = exp.speedup(hw);
            combined[i] = exp.speedup(exp.run(withCritIc(mech.hw)));
            const auto baseCyc = static_cast<double>(base.cycles);
            dI[i] = (static_cast<double>(base.stallForIIcache +
                                         base.stallForIRedirect) -
                     static_cast<double>(hw.cpu.stallForIIcache +
                                         hw.cpu.stallForIRedirect)) /
                    baseCyc;
            dRd[i] = (static_cast<double>(base.stallForRd) -
                      static_cast<double>(hw.cpu.stallForRd)) /
                     baseCyc;
        });
        const bool isNone =
            std::string(mech.name) == "none (CritIC only)";
        fig11a.addRow({mech.name,
                       isNone ? std::string("baseline")
                              : gainPct(geoMean(hwOnly)),
                       gainPct(geoMean(combined))});
        if (!isNone)
            fig11b.addRow({mech.name, pct(mean(dI)), pct(mean(dRd))});
    }

    std::printf("Fig. 11a — speedup over baseline "
                "(geomean over the ten apps)\n%s\n",
                fig11a.render().c_str());
    std::printf("Fig. 11b — stall-category movement of each hardware "
                "mechanism (baseline minus mechanism)\n%s\n",
                fig11b.render().c_str());
    return 0;
}
