/**
 * @file
 * Fig. 1 reproduction.
 *
 * (a) Mean speedup of the two classic single-instruction criticality
 *     optimizations — critical-load prefetching [18] and ALU
 *     prioritization [32][33] — on SPEC.int, SPEC.float and the ten
 *     Android apps, with the fraction of critical (fanout >= 8)
 *     instructions on the right axis.  Paper: prefetch 15%/34%/0.7%,
 *     prioritization 9%/25%/5%; mobile apps have MORE critical
 *     instructions yet benefit least.
 *
 * (b) Distribution of the number of low-fanout instructions between
 *     two successive high-fanout instructions in a dependence chain.
 *     Paper: Android mass at gaps 1..5 (cumulative 52%), SPEC mostly
 *     gap 0 or no dependent critical at all (60% float / 35% int).
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

namespace
{

struct SuiteRow
{
    const char *name;
    std::vector<workload::AppProfile> apps;
};

} // namespace

int
main()
{
    setQuiet(true);
    header("Fig. 1", "conventional criticality optimizations by suite");

    std::vector<SuiteRow> suites{
        {"SPEC.int", workload::specIntApps()},
        {"SPEC.float", workload::specFloatApps()},
        {"Android", workload::mobileApps()},
    };

    Table fig1a({"suite", "critical-load prefetch", "ALU prioritization",
                 "% critical insts (right axis)"});
    Table fig1b({"suite", "no dependent crit", "gap 0", "gap 1", "gap 2",
                 "gap 3", "gap 4", "gap 5", "cum 1..5"});

    for (auto &suite : suites) {
        auto exps = makeExperiments(suite.apps);

        std::vector<double> prefetch(exps.size()), prio(exps.size()),
            critFrac(exps.size());
        Histogram gaps;
        std::vector<double> noDep(exps.size());

        parallelFor(exps.size(), [&](std::size_t i) {
            auto &exp = *exps[i];
            sim::Variant pf;
            pf.criticalLoadPrefetch = true;
            prefetch[i] = exp.speedup(exp.run(pf));
            sim::Variant pr;
            pr.aluPrio = true;
            prio[i] = exp.speedup(exp.run(pr));
            critFrac[i] = exp.fanout().critFraction();
            noDep[i] = exp.chainStats().noDependentCritFrac;
        });
        for (auto &exp : exps)
            gaps.merge(exp->chainStats().critGap);

        fig1a.addRow({suite.name, gainPct(geoMean(prefetch)),
                      gainPct(geoMean(prio)), pct(mean(critFrac))});

        double cum15 = 0.0;
        std::vector<std::string> row{suite.name, pct(mean(noDep))};
        for (int g = 0; g <= 5; ++g) {
            const double frac = gaps.fraction(g) * (1.0 - mean(noDep));
            row.push_back(pct(frac));
            if (g >= 1)
                cum15 += frac;
        }
        row.push_back(pct(cum15));
        fig1b.addRow(std::move(row));
    }

    std::printf("Fig. 1a — mean speedup of single-instruction "
                "criticality optimizations\n%s\n",
                fig1a.render().c_str());
    std::printf("Fig. 1b — low-fanout instructions between successive "
                "high-fanout chain members\n(gap fractions scaled by "
                "the share of criticals that do have a dependent "
                "critical)\n%s\n",
                fig1b.render().c_str());
    return 0;
}
