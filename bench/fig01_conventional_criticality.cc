/**
 * @file
 * Fig. 1 reproduction.
 *
 * (a) Mean speedup of the two classic single-instruction criticality
 *     optimizations — critical-load prefetching [18] and ALU
 *     prioritization [32][33] — on SPEC.int, SPEC.float and the ten
 *     Android apps, with the fraction of critical (fanout >= 8)
 *     instructions on the right axis.  Paper: prefetch 15%/34%/0.7%,
 *     prioritization 9%/25%/5%; mobile apps have MORE critical
 *     instructions yet benefit least.
 *
 * (b) Distribution of the number of low-fanout instructions between
 *     two successive high-fanout instructions in a dependence chain.
 *     Paper: Android mass at gaps 1..5 (cumulative 52%), SPEC mostly
 *     gap 0 or no dependent critical at all (60% float / 35% int).
 */

#include "bench_common.hh"
#include "support/histogram.hh"

using namespace critics;
using namespace critics::bench;

namespace
{

struct SuiteRow
{
    const char *name;
    std::vector<workload::AppProfile> apps;
};

} // namespace

int
main()
{
    setQuiet(true);
    header("Fig. 1", "conventional criticality optimizations by suite");

    std::vector<SuiteRow> suites{
        {"SPEC.int", workload::specIntApps()},
        {"SPEC.float", workload::specFloatApps()},
        {"Android", workload::mobileApps()},
    };

    sim::Variant pf = variant("prefetch");
    pf.criticalLoadPrefetch = true;
    sim::Variant prio = variant("aluprio");
    prio.aluPrio = true;

    Table fig1a({"suite", "critical-load prefetch", "ALU prioritization",
                 "% critical insts (right axis)"});
    Table fig1b({"suite", "no dependent crit", "gap 0", "gap 1", "gap 2",
                 "gap 3", "gap 4", "gap 5", "cum 1..5"});

    for (auto &suite : suites) {
        const auto sweep =
            runSweep(std::string("fig01-") + suite.name, suite.apps,
                     {variant("baseline"), pf, prio});

        std::vector<double> prefetch(suite.apps.size()),
            prioSpeed(suite.apps.size());
        for (std::size_t i = 0; i < suite.apps.size(); ++i) {
            prefetch[i] = sweep.speedup(i, 1);
            prioSpeed[i] = sweep.speedup(i, 2);
        }

        // Offline chain statistics come from the shared experiments
        // (not cacheable RunResults).
        auto exps = experiments(suite.apps);
        std::vector<double> critFrac(exps.size()), noDep(exps.size());
        parallelFor(exps.size(), [&](std::size_t i) {
            critFrac[i] = exps[i]->fanout().critFraction();
            noDep[i] = exps[i]->chainStats().noDependentCritFrac;
        });
        Histogram gaps;
        for (auto &exp : exps)
            gaps.merge(exp->chainStats().critGap);

        fig1a.addRow({suite.name, gainPct(geoMean(prefetch)),
                      gainPct(geoMean(prioSpeed)), pct(mean(critFrac))});

        double cum15 = 0.0;
        std::vector<std::string> row{suite.name, pct(mean(noDep))};
        for (int g = 0; g <= 5; ++g) {
            const double frac = gaps.fraction(g) * (1.0 - mean(noDep));
            row.push_back(pct(frac));
            if (g >= 1)
                cum15 += frac;
        }
        row.push_back(pct(cum15));
        fig1b.addRow(std::move(row));
    }

    std::printf("Fig. 1a — mean speedup of single-instruction "
                "criticality optimizations\n%s\n",
                fig1a.render().c_str());
    std::printf("Fig. 1b — low-fanout instructions between successive "
                "high-fanout chain members\n(gap fractions scaled by "
                "the share of criticals that do have a dependent "
                "critical)\n%s\n",
                fig1b.render().c_str());
    return 0;
}
