/**
 * @file
 * Fig. 3 reproduction.
 *
 * (a) Fetch-to-commit stage breakdown of the high-fanout (critical)
 *     instructions, SPEC vs Android.  Paper: Android criticals spend
 *     ~40% of their time in Fetch while SPEC criticals spend <5%,
 *     with SPEC dominated by Execute/ROB residency.
 * (b) The split of front-end stalls into F.StallForI (i-cache +
 *     branch redirect supply) and F.StallForR+D (back-pressure), as
 *     fractions of whole-program cycles.
 * (c) The long-latency instruction mix: mobile apps have far fewer
 *     high-latency (divide/FP/missing-load) instructions.
 */

#include <cmath>
#include <fstream>

#include "bench_common.hh"
#include "stats/interval.hh"

using namespace critics;
using namespace critics::bench;

namespace
{

/**
 * Fig. 3 time-series: re-run one Android baseline with interval
 * sampling, write the cumulative per-interval rows as JSONL, and
 * check that the sampled series reproduces the reported end-of-run
 * totals — (last row − warmup row) must equal the warmup-subtracted
 * F.StallForI / F.StallForR+D the tables above were built from.
 * Returns false on any inconsistency.
 */
bool
emitIntervalSeries(const workload::AppProfile &app)
{
    auto exp = runner::sharedRunner().experiment(app, benchOptions());
    sim::RunHooks hooks;
    stats::IntervalSeries series;
    hooks.statsInterval = 25000;
    hooks.intervals = &series;
    // Direct run: hooks never enter the cache key, and a cached
    // result would carry no interval rows.
    const auto result = exp->run(variant("baseline"), hooks);

    const std::string path = "stats_fig03.jsonl";
    std::ofstream out(path, std::ios::trunc);
    out << series.toJsonl(app.name + "/baseline");
    std::printf("interval series: %s (%zu rows of %zu stats)\n",
                path.c_str(), series.size(), series.names().size());

    if (series.empty())
        return false;
    const auto &rows = series.rows();
    const auto &last = rows.back();
    auto value = [&](const stats::IntervalSeries::Row &row,
                     const char *name) { return series.at(row, name); };

    // Rows are cumulative from cycle 0; the reported totals subtract
    // the warmup snapshot.  The warmup row is the (unique) row whose
    // distance from the last row equals the reported cycle and
    // instruction counts — counts are integers below 2^53, so the
    // double comparison is exact.
    const stats::IntervalSeries::Row *warmup = nullptr;
    for (const auto &row : rows) {
        if (value(last, "cpu.cycles") - value(row, "cpu.cycles") ==
                static_cast<double>(result.cpu.cycles) &&
            value(last, "cpu.committed") -
                    value(row, "cpu.committed") ==
                static_cast<double>(result.cpu.committed)) {
            warmup = &row;
            break;
        }
    }
    if (warmup == nullptr) {
        std::printf("interval series: no row matches the warmup "
                    "boundary — series is inconsistent\n");
        return false;
    }

    auto delta = [&](const char *name) {
        return value(last, name) - value(*warmup, name);
    };
    const double cycles = delta("cpu.cycles");
    const double stallForI = (delta("cpu.fetch.stallForI.icache") +
                              delta("cpu.fetch.stallForI.redirect")) /
                             cycles;
    const double stallForRd = delta("cpu.fetch.stallForRd") / cycles;
    const bool ok =
        std::abs(stallForI - result.cpu.fracStallForI()) < 1e-9 &&
        std::abs(stallForRd - result.cpu.fracStallForRd()) < 1e-9;
    std::printf("interval vs totals (%s): F.StallForI %.4f/%.4f, "
                "F.StallForR+D %.4f/%.4f — %s\n",
                app.name.c_str(), stallForI,
                result.cpu.fracStallForI(), stallForRd,
                result.cpu.fracStallForRd(),
                ok ? "consistent" : "MISMATCH");
    return ok;
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Fig. 3", "where critical instructions spend their time");

    struct SuiteRow
    {
        const char *name;
        std::vector<workload::AppProfile> apps;
    };
    std::vector<SuiteRow> suites{
        {"SPEC.int", workload::specIntApps()},
        {"SPEC.float", workload::specFloatApps()},
        {"Android", workload::mobileApps()},
    };

    Table fig3a({"suite", "Fetch", "Decode/Rename", "ROB wait",
                 "Execute", "Commit wait"});
    Table fig3b({"suite", "F.StallForI (icache)", "F.StallForI (branch)",
                 "F.StallForR+D", "IPC"});
    Table fig3c({"suite", "div/FP ops", "L1-missing loads",
                 "high-latency total"});

    for (auto &suite : suites) {
        // The baseline runs are the sweep (cached after the first
        // invocation); the instruction-mix scan needs the raw traces,
        // which live on the shared experiments.
        const auto sweep =
            runSweep(std::string("fig03-") + suite.name, suite.apps,
                     {variant("baseline")});
        auto exps = experiments(suite.apps);

        cpu::StageBreakdown crit;
        double icacheStall = 0, redirectStall = 0, rdStall = 0, ipc = 0;
        double longLatOps = 0, missLoads = 0;
        for (std::size_t i = 0; i < suite.apps.size(); ++i) {
            const auto &stats = sweep.at(i, 0).cpu;
            const auto &b = stats.crit;
            crit.fetch += b.fetch;
            crit.decode += b.decode;
            crit.issueWait += b.issueWait;
            crit.execute += b.execute;
            crit.commitWait += b.commitWait;
            crit.insts += b.insts;
            const auto cycles = static_cast<double>(stats.cycles);
            icacheStall +=
                static_cast<double>(stats.stallForIIcache) / cycles;
            redirectStall +=
                static_cast<double>(stats.stallForIRedirect) / cycles;
            rdStall += stats.fracStallForRd();
            ipc += stats.ipc();

            // Fig. 3c mix from the trace itself.
            std::uint64_t lat = 0, total = 0;
            for (const auto &d : exps[i]->baseTrace().insts) {
                ++total;
                switch (d.op) {
                  case isa::OpClass::IntDiv:
                  case isa::OpClass::FloatAdd:
                  case isa::OpClass::FloatMul:
                  case isa::OpClass::FloatDiv:
                    ++lat;
                    break;
                  default:
                    break;
                }
            }
            longLatOps += static_cast<double>(lat) /
                          static_cast<double>(total);
            missLoads += stats.mem.dcache.missRate() *
                         (static_cast<double>(
                              stats.mem.dcache.accesses) /
                          static_cast<double>(stats.committed));
        }
        const auto n = static_cast<double>(suite.apps.size());
        const double total = crit.total();
        fig3a.addRow({suite.name, pct(crit.fetch / total),
                      pct(crit.decode / total),
                      pct(crit.issueWait / total),
                      pct(crit.execute / total),
                      pct(crit.commitWait / total)});
        fig3b.addRow({suite.name, pct(icacheStall / n),
                      pct(redirectStall / n), pct(rdStall / n),
                      fmt(ipc / n)});
        fig3c.addRow({suite.name, pct(longLatOps / n),
                      pct(missLoads / n),
                      pct((longLatOps + missLoads) / n)});
    }

    std::printf("Fig. 3a — stage residency of critical "
                "(fanout >= 8) instructions\n%s\n",
                fig3a.render().c_str());
    std::printf("Fig. 3b — front-end stall attribution "
                "(fraction of cycles)\n%s\n", fig3b.render().c_str());
    std::printf("Fig. 3c — long-latency instruction mix\n%s\n",
                fig3c.render().c_str());
    return emitIntervalSeries(workload::mobileApps().front()) ? 0 : 1;
}
