/**
 * @file
 * Fig. 8 reproduction: the CritIC optimization on *stock hardware*
 * (switch approach 1 — an unconditional branch pair around every
 * 16-bit run) versus the lost potential (a hypothetical zero-overhead
 * switch).  Paper: the branch pair keeps only ~1/5 of the possible
 * gain (~3% vs ~14%) because typical CritICs are only ~5 instructions
 * long, motivating the CDP-based switch of Sec. IV-B.
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

int
main()
{
    setQuiet(true);
    header("Fig. 8", "approach 1 (branch switch) vs lost potential");

    sim::Variant branchPair =
        variant("critic-branchpair", sim::Transform::CritIc);
    branchPair.switchMode = compiler::SwitchMode::BranchPair;
    sim::Variant zero =
        variant("critic-zeroswitch", sim::Transform::CritIc);
    zero.switchMode = compiler::SwitchMode::None;
    sim::Variant viaCdp = variant("critic", sim::Transform::CritIc);

    const auto sweep =
        runSweep("fig08", workload::mobileApps(),
                 {variant("baseline"), branchPair, zero, viaCdp});

    std::vector<double> actual(sweep.apps.size()),
        ideal(sweep.apps.size()), cdp(sweep.apps.size());
    for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
        actual[i] = sweep.speedup(i, 1);
        ideal[i] = sweep.speedup(i, 2);
        cdp[i] = sweep.speedup(i, 3);
    }

    Table table({"app", "branch-pair switch (stock hw)",
                 "CDP switch (Sec. IV-B)", "zero-overhead (ideal)",
                 "lost potential"});
    for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
        table.addRow({sweep.apps[i].name, gainPct(actual[i]),
                      gainPct(cdp[i]), gainPct(ideal[i]),
                      gainPct(ideal[i] / actual[i])});
    }
    table.addRow({"average", gainPct(geoMean(actual)),
                  gainPct(geoMean(cdp)), gainPct(geoMean(ideal)),
                  gainPct(geoMean(ideal) / geoMean(actual))});

    std::printf("Fig. 8 — CritIC with each switching mechanism\n%s\n",
                table.render().c_str());
    std::printf("Paper shape: branch-pair keeps ~1/5 of the ideal "
                "gain; the CDP switch recovers nearly all of it.\n");
    return 0;
}
