/**
 * @file
 * Fig. 13 reproduction — "why even bother with criticality?".
 *
 * (a) Speedup of OPP16 (opportunistic conversion of any directly
 *     representable run >= 3), Compress (the profile-guided
 *     fine-grained Thumb conversion of [78]), CritIC, and
 *     OPP16+CritIC.  Paper: 6% / 8% / 12.6% / ~16%.
 * (b) Percentage of dynamic instructions converted to the 16-bit
 *     format: CritIC converts ~37%/50% fewer than OPP16/Compress yet
 *     wins, because it selects the chains whose fetch time is on the
 *     critical path and hoists them.
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

int
main()
{
    setQuiet(true);
    header("Fig. 13", "criticality-blind 16-bit conversion vs CritIC");

    const auto apps = workload::mobileApps();
    auto exps = makeExperiments(apps);

    struct Scheme
    {
        const char *name;
        sim::Transform transform;
    };
    const std::vector<Scheme> schemes{
        {"OPP16", sim::Transform::Opp16},
        {"Compress [78]", sim::Transform::Compress},
        {"CritIC", sim::Transform::CritIc},
        {"OPP16+CritIC", sim::Transform::Opp16PlusCritIc},
    };

    Table fig13a({"scheme", "speedup (geomean)", "min", "max"});
    Table fig13b({"scheme", "dyn insts in 16-bit", "insts expanded"});

    for (const auto &scheme : schemes) {
        std::vector<double> speed(exps.size()), conv(exps.size());
        std::vector<double> expanded(exps.size());
        parallelFor(exps.size(), [&](std::size_t i) {
            auto &exp = *exps[i];
            sim::Variant v;
            v.transform = scheme.transform;
            const auto result = exp.run(v);
            speed[i] = exp.speedup(result);
            conv[i] = result.dynThumbFraction;
            expanded[i] = static_cast<double>(result.pass.instsExpanded);
        });
        double lo = speed[0], hi = speed[0];
        for (const double s : speed) {
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        fig13a.addRow({scheme.name, gainPct(geoMean(speed)),
                       gainPct(lo), gainPct(hi)});
        fig13b.addRow({scheme.name, pct(mean(conv)),
                       fmt(mean(expanded), 0)});
    }

    std::printf("Fig. 13a — speedup over baseline\n%s\n",
                fig13a.render().c_str());
    std::printf("Fig. 13b — dynamic 16-bit conversion volume\n%s\n",
                fig13b.render().c_str());
    return 0;
}
