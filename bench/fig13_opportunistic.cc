/**
 * @file
 * Fig. 13 reproduction — "why even bother with criticality?".
 *
 * (a) Speedup of OPP16 (opportunistic conversion of any directly
 *     representable run >= 3), Compress (the profile-guided
 *     fine-grained Thumb conversion of [78]), CritIC, and
 *     OPP16+CritIC.  Paper: 6% / 8% / 12.6% / ~16%.
 * (b) Percentage of dynamic instructions converted to the 16-bit
 *     format: CritIC converts ~37%/50% fewer than OPP16/Compress yet
 *     wins, because it selects the chains whose fetch time is on the
 *     critical path and hoists them.
 */

#include <algorithm>

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

int
main()
{
    setQuiet(true);
    header("Fig. 13", "criticality-blind 16-bit conversion vs CritIC");

    struct Scheme
    {
        const char *name;
        sim::Variant v;
    };
    const std::vector<Scheme> schemes{
        {"OPP16", variant("opp16", sim::Transform::Opp16)},
        {"Compress [78]", variant("compress", sim::Transform::Compress)},
        {"CritIC", variant("critic", sim::Transform::CritIc)},
        {"OPP16+CritIC",
         variant("opp16+critic", sim::Transform::Opp16PlusCritIc)},
    };

    std::vector<sim::Variant> variants{variant("baseline")};
    for (const auto &scheme : schemes)
        variants.push_back(scheme.v);
    const auto sweep =
        runSweep("fig13", workload::mobileApps(), variants);

    Table fig13a({"scheme", "speedup (geomean)", "min", "max"});
    Table fig13b({"scheme", "dyn insts in 16-bit", "insts expanded"});

    for (std::size_t s = 0; s < schemes.size(); ++s) {
        const std::size_t var = 1 + s;
        std::vector<double> speed(sweep.apps.size()),
            conv(sweep.apps.size()), expanded(sweep.apps.size());
        for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
            const auto &result = sweep.at(i, var);
            speed[i] = sweep.speedup(i, var);
            conv[i] = result.dynThumbFraction;
            expanded[i] =
                static_cast<double>(result.pass.instsExpanded);
        }
        const auto [lo, hi] =
            std::minmax_element(speed.begin(), speed.end());
        fig13a.addRow({schemes[s].name, gainPct(geoMean(speed)),
                       gainPct(*lo), gainPct(*hi)});
        fig13b.addRow({schemes[s].name, pct(mean(conv)),
                       fmt(mean(expanded), 0)});
    }

    std::printf("Fig. 13a — speedup over baseline\n%s\n",
                fig13a.render().c_str());
    std::printf("Fig. 13b — dynamic 16-bit conversion volume\n%s\n",
                fig13b.render().c_str());
    return 0;
}
