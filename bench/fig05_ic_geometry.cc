/**
 * @file
 * Fig. 5 reproduction.
 *
 * (a) IC length and dynamic-stream spread, SPEC vs Android.  Paper:
 *     SPEC ICs reach ~1.3K instructions spread over ~6.3K, while
 *     Android ICs stay <= ~20 long and <= ~540 spread — which is what
 *     makes a software/compiler approach viable for mobile apps.
 * (b) CDF of dynamic-stream coverage by unique CritICs, plus the
 *     subset representable in the 16-bit format without change
 *     (paper: 95.5% of unique sequences).
 */

#include "bench_common.hh"
#include "support/histogram.hh"

using namespace critics;
using namespace critics::bench;

int
main()
{
    setQuiet(true);
    header("Fig. 5", "IC geometry and unique-CritIC coverage");

    struct SuiteRow
    {
        const char *name;
        std::vector<workload::AppProfile> apps;
    };
    std::vector<SuiteRow> suites{
        {"SPEC.int", workload::specIntApps()},
        {"SPEC.float", workload::specFloatApps()},
        {"Android", workload::mobileApps()},
    };

    Table fig5a({"suite", "IC len p50", "IC len p99", "IC len max",
                 "spread p50", "spread p99", "spread max"});

    std::vector<analysis::CoverageCdf> androidCdfs;
    double convertibleFrac = 0.0;
    std::size_t uniqueChains = 0;

    // This figure is pure offline analysis (no design-point runs), so
    // it drives the shared experiments directly; the profiling work is
    // parallelized over the runner's pool.
    for (auto &suite : suites) {
        auto exps = experiments(suite.apps);
        parallelFor(exps.size(), [&](std::size_t i) {
            (void)exps[i]->chainStats();
            (void)exps[i]->mined();
        });

        Histogram len, spread;
        for (auto &expPtr : exps) {
            len.merge(expPtr->chainStats().icLength);
            spread.merge(expPtr->chainStats().icSpread);
        }
        fig5a.addRow({suite.name, fmt(len.percentile(0.5), 0),
                      fmt(len.percentile(0.99), 0),
                      fmt(static_cast<double>(len.maxBucket()), 0),
                      fmt(spread.percentile(0.5), 0),
                      fmt(spread.percentile(0.99), 0),
                      fmt(static_cast<double>(spread.maxBucket()), 0)});

        if (std::string(suite.name) == "Android") {
            for (auto &expPtr : exps) {
                const auto cdf =
                    analysis::coverageCdf(expPtr->mined());
                convertibleFrac += cdf.convertibleChainFraction;
                uniqueChains += expPtr->mined().chains.size();
                androidCdfs.push_back(cdf);
            }
            convertibleFrac /= static_cast<double>(exps.size());
        }
    }

    std::printf("Fig. 5a — IC length and dynamic spread\n%s\n",
                fig5a.render().c_str());

    // Fig. 5b: average the per-app CDFs at fixed chain-count marks.
    Table fig5b({"unique CritICs", "coverage (all)",
                 "coverage (16-bit representable)"});
    const std::vector<double> marks{1, 2, 4, 8, 16, 32, 64, 128, 256,
                                    512, 1024};
    auto sampleCdf = [](const std::vector<CdfPoint> &cdf, double x) {
        double value = 0.0;
        for (const auto &point : cdf) {
            if (point.x <= x)
                value = point.fraction;
            else
                break;
        }
        return value;
    };
    for (const double x : marks) {
        double all = 0, conv = 0;
        for (const auto &cdf : androidCdfs) {
            all += sampleCdf(cdf.all, x);
            conv += sampleCdf(cdf.convertible, x);
        }
        const auto n = static_cast<double>(androidCdfs.size());
        fig5b.addRow({fmt(x, 0), pct(all / n), pct(conv / n)});
    }
    std::printf("Fig. 5b — CDF of dynamic coverage by unique CritICs "
                "(Android, per-app average)\n%s\n",
                fig5b.render().c_str());
    std::printf("Unique CritICs across the ten apps: %zu; "
                "16-bit-representable unique sequences: %s "
                "(paper: 95.5%%)\n",
                uniqueChains, pct(convertibleFrac).c_str());
    return 0;
}
