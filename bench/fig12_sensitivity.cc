/**
 * @file
 * Fig. 12 reproduction — sensitivity analyses.
 *
 * (a) Speedup and fetch-stall savings as a function of the *exact*
 *     CritIC length n: longer chains amortize the switch better but
 *     get rarer; the paper's sweet spot is n = 5.
 * (b) Speedup as a function of the profiled fraction of the execution
 *     (paper: 1/3 -> ~10%, 72% -> 12.6%, 100% -> ~15%).
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

int
main()
{
    setQuiet(true);
    header("Fig. 12", "sensitivity to CritIC length and profiling");

    const auto apps = workload::mobileApps();
    auto exps = makeExperiments(apps);

    // ---- (a) exact-length sweep ---------------------------------------
    Table fig12a({"exact length n", "speedup", "fetch-stall savings",
                  "coverage"});
    for (unsigned n = 2; n <= 8; ++n) {
        std::vector<double> speed(exps.size()), dStall(exps.size()),
            cover(exps.size());
        parallelFor(exps.size(), [&](std::size_t i) {
            auto &exp = *exps[i];
            const auto &base = exp.baseline().cpu;
            sim::Variant v;
            v.transform = sim::Transform::CritIc;
            v.exactChainLen = n;
            const auto result = exp.run(v);
            speed[i] = exp.speedup(result);
            dStall[i] = (base.fracStallForI() + base.fracStallForRd()) -
                        (result.cpu.fracStallForI() +
                         result.cpu.fracStallForRd());
            cover[i] = result.selectionCoverage;
        });
        fig12a.addRow({fmt(n, 0), gainPct(geoMean(speed)),
                       pct(mean(dStall)), pct(mean(cover))});
    }
    std::printf("Fig. 12a — impact of exact CritIC length\n%s\n",
                fig12a.render().c_str());

    // ---- (b) profile-coverage sweep -------------------------------------
    Table fig12b({"profiled fraction", "speedup", "coverage"});
    for (const double frac : {0.15, 0.33, 0.5, 0.72, 1.0}) {
        std::vector<double> speed(exps.size()), cover(exps.size());
        parallelFor(exps.size(), [&](std::size_t i) {
            auto &exp = *exps[i];
            sim::Variant v;
            v.transform = sim::Transform::CritIc;
            v.profileFraction = frac;
            const auto result = exp.run(v);
            speed[i] = exp.speedup(result);
            cover[i] = result.selectionCoverage;
        });
        fig12b.addRow({pct(frac, 0), gainPct(geoMean(speed)),
                       pct(mean(cover))});
    }
    std::printf("Fig. 12b — impact of profiling coverage "
                "(headline results use 72%%)\n%s\n",
                fig12b.render().c_str());
    return 0;
}
