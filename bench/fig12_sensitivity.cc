/**
 * @file
 * Fig. 12 reproduction — sensitivity analyses.
 *
 * (a) Speedup and fetch-stall savings as a function of the *exact*
 *     CritIC length n: longer chains amortize the switch better but
 *     get rarer; the paper's sweet spot is n = 5.
 * (b) Speedup as a function of the profiled fraction of the execution
 *     (paper: 1/3 -> ~10%, 72% -> 12.6%, 100% -> ~15%).
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

int
main()
{
    setQuiet(true);
    header("Fig. 12", "sensitivity to CritIC length and profiling");

    // Both sweeps in one grid: variant 0 is the baseline, 1..7 the
    // exact-length points (n = 2..8), then the profile fractions.
    const std::vector<unsigned> lengths{2, 3, 4, 5, 6, 7, 8};
    const std::vector<double> fractions{0.15, 0.33, 0.5, 0.72, 1.0};

    std::vector<sim::Variant> variants{variant("baseline")};
    for (const unsigned n : lengths) {
        sim::Variant v = variant("critic-len" + std::to_string(n),
                                 sim::Transform::CritIc);
        v.exactChainLen = n;
        variants.push_back(v);
    }
    for (const double frac : fractions) {
        sim::Variant v =
            variant("critic-prof" + std::to_string(
                        static_cast<int>(frac * 100)),
                    sim::Transform::CritIc);
        v.profileFraction = frac;
        variants.push_back(v);
    }
    const auto sweep =
        runSweep("fig12", workload::mobileApps(), variants);

    // ---- (a) exact-length sweep ---------------------------------------
    Table fig12a({"exact length n", "speedup", "fetch-stall savings",
                  "coverage"});
    for (std::size_t l = 0; l < lengths.size(); ++l) {
        const std::size_t var = 1 + l;
        std::vector<double> speed(sweep.apps.size()),
            dStall(sweep.apps.size()), cover(sweep.apps.size());
        for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
            const auto &base = sweep.at(i, 0).cpu;
            const auto &result = sweep.at(i, var);
            speed[i] = sweep.speedup(i, var);
            dStall[i] = (base.fracStallForI() + base.fracStallForRd()) -
                        (result.cpu.fracStallForI() +
                         result.cpu.fracStallForRd());
            cover[i] = result.selectionCoverage;
        }
        fig12a.addRow({fmt(lengths[l], 0), gainPct(geoMean(speed)),
                       pct(mean(dStall)), pct(mean(cover))});
    }
    std::printf("Fig. 12a — impact of exact CritIC length\n%s\n",
                fig12a.render().c_str());

    // ---- (b) profile-coverage sweep -------------------------------------
    Table fig12b({"profiled fraction", "speedup", "coverage"});
    for (std::size_t f = 0; f < fractions.size(); ++f) {
        const std::size_t var = 1 + lengths.size() + f;
        std::vector<double> speed(sweep.apps.size()),
            cover(sweep.apps.size());
        for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
            speed[i] = sweep.speedup(i, var);
            cover[i] = sweep.at(i, var).selectionCoverage;
        }
        fig12b.addRow({pct(fractions[f], 0), gainPct(geoMean(speed)),
                       pct(mean(cover))});
    }
    std::printf("Fig. 12b — impact of profiling coverage "
                "(headline results use 72%%)\n%s\n",
                fig12b.render().c_str());
    return 0;
}
