/**
 * @file
 * Fig. 10 reproduction — the headline result.
 *
 * (a) Per-app CPU speedup for the three software design points:
 *     Hoist (motion only; paper avg 2.5%), CritIC (hoist + 16-bit +
 *     CDP; paper 9–15%, avg 12.6%) and CritIC.Ideal (no length or
 *     convertibility limits; paper <1% above CritIC).
 * (b) Fetch-stall savings split into the producer (F.StallForI) and
 *     consumer (F.StallForR+D) sides (paper: 3.6% + 2.5%).
 * (c) Energy gains by SoC component (paper: i-cache 0.8%, CPU 2.2%,
 *     memory 1.5% of SoC; 4.6% SoC and 15% CPU-only savings).
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

int
main()
{
    setQuiet(true);
    header("Fig. 10", "Hoist / CritIC / CritIC.Ideal speedup & energy");

    sim::Variant hoist = variant("hoist", sim::Transform::Hoist);
    sim::Variant critic = variant("critic", sim::Transform::CritIc);
    sim::Variant ideal =
        variant("critic-ideal", sim::Transform::CritIcIdeal);
    const auto sweep =
        runSweep("fig10", workload::mobileApps(),
                 {variant("baseline"), hoist, critic, ideal});

    Table fig10a({"app", "Hoist", "CritIC", "CritIC.Ideal",
                  "coverage", "dyn 16-bit"});
    Table fig10b({"app", "dF.StallForI (producer)",
                  "dF.StallForR+D (consumer)"});
    Table fig10c({"app", "i-cache", "CPU", "memory", "SoC total",
                  "CPU-only"});
    std::vector<double> hoists, critics_, ideals;
    double dI = 0, dRd = 0, eIc = 0, eCpu = 0, eMem = 0, eSoc = 0,
           eCpuOnly = 0;
    for (std::size_t i = 0; i < sweep.apps.size(); ++i) {
        const auto &base = sweep.at(i, 0);
        const auto &rc = sweep.at(i, 2);
        const double sHoist = sweep.speedup(i, 1);
        const double sCritic = sweep.speedup(i, 2);
        const double sIdeal = sweep.speedup(i, 3);

        fig10a.addRow({sweep.apps[i].name, gainPct(sHoist),
                       gainPct(sCritic), gainPct(sIdeal),
                       pct(rc.selectionCoverage),
                       pct(rc.dynThumbFraction)});

        // Cycles bought back, as a fraction of *baseline* cycles, so
        // savings are additive with the speedup.
        const auto baseCyc = static_cast<double>(base.cpu.cycles);
        const double dStallI =
            (static_cast<double>(base.cpu.stallForIIcache +
                                 base.cpu.stallForIRedirect) -
             static_cast<double>(rc.cpu.stallForIIcache +
                                 rc.cpu.stallForIRedirect)) /
            baseCyc;
        const double dStallRd =
            (static_cast<double>(base.cpu.stallForRd) -
             static_cast<double>(rc.cpu.stallForRd)) /
            baseCyc;
        fig10b.addRow({sweep.apps[i].name, pct(dStallI),
                       pct(dStallRd)});

        const auto &eb = base.energy;
        const auto &ec = rc.energy;
        const double socBase = eb.total();
        const double eIcache = (eb.icache - ec.icache) / socBase;
        const double eCpuRow = (eb.cpuCore + eb.dcache + eb.l2 -
                                ec.cpuCore - ec.dcache - ec.l2) /
                               socBase;
        const double eMemRow = (eb.memory() - ec.memory()) / socBase;
        const double eSocRow = (socBase - ec.total()) / socBase;
        const double eCpuOnlyRow = (eb.cpu() - ec.cpu()) / eb.cpu();
        fig10c.addRow({sweep.apps[i].name, pct(eIcache), pct(eCpuRow),
                       pct(eMemRow), pct(eSocRow), pct(eCpuOnlyRow)});

        hoists.push_back(sHoist);
        critics_.push_back(sCritic);
        ideals.push_back(sIdeal);
        dI += dStallI;
        dRd += dStallRd;
        eIc += eIcache;
        eCpu += eCpuRow;
        eMem += eMemRow;
        eSoc += eSocRow;
        eCpuOnly += eCpuOnlyRow;
    }
    const auto n = static_cast<double>(sweep.apps.size());
    fig10a.addRow({"average", gainPct(geoMean(hoists)),
                   gainPct(geoMean(critics_)), gainPct(geoMean(ideals)),
                   "", ""});
    fig10b.addRow({"average", pct(dI / n), pct(dRd / n)});
    fig10c.addRow({"average", pct(eIc / n), pct(eCpu / n),
                   pct(eMem / n), pct(eSoc / n), pct(eCpuOnly / n)});

    std::printf("Fig. 10a — CPU speedup over baseline\n%s\n",
                fig10a.render().c_str());
    std::printf("Fig. 10b — fetch-stall savings "
                "(baseline minus CritIC, fraction of cycles)\n%s\n",
                fig10b.render().c_str());
    std::printf("Fig. 10c — energy savings by component "
                "(fraction of baseline SoC energy; CPU-only relative "
                "to CPU energy)\n%s\n",
                fig10c.render().c_str());
    std::printf("Per-app wall time (from the run manifest)\n%s\n",
                timingTable(sweep.batch).render().c_str());
    return 0;
}
