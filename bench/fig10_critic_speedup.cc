/**
 * @file
 * Fig. 10 reproduction — the headline result.
 *
 * (a) Per-app CPU speedup for the three software design points:
 *     Hoist (motion only; paper avg 2.5%), CritIC (hoist + 16-bit +
 *     CDP; paper 9–15%, avg 12.6%) and CritIC.Ideal (no length or
 *     convertibility limits; paper <1% above CritIC).
 * (b) Fetch-stall savings split into the producer (F.StallForI) and
 *     consumer (F.StallForR+D) sides (paper: 3.6% + 2.5%).
 * (c) Energy gains by SoC component (paper: i-cache 0.8%, CPU 2.2%,
 *     memory 1.5% of SoC; 4.6% SoC and 15% CPU-only savings).
 */

#include "bench_common.hh"

using namespace critics;
using namespace critics::bench;

int
main()
{
    setQuiet(true);
    header("Fig. 10", "Hoist / CritIC / CritIC.Ideal speedup & energy");

    const auto apps = workload::mobileApps();
    auto exps = makeExperiments(apps);

    struct Row
    {
        double hoist, critic, ideal;
        double dStallI, dStallRd; // stall-fraction savings
        double eIcache, eCpu, eMem, eSoc, eCpuOnly;
        double coverage, dynThumb;
    };
    std::vector<Row> rows(exps.size());

    parallelFor(exps.size(), [&](std::size_t i) {
        auto &exp = *exps[i];
        Row &row = rows[i];
        const auto &base = exp.baseline();

        sim::Variant hoist;
        hoist.transform = sim::Transform::Hoist;
        row.hoist = exp.speedup(exp.run(hoist));

        sim::Variant critic;
        critic.transform = sim::Transform::CritIc;
        const auto rc = exp.run(critic);
        row.critic = exp.speedup(rc);
        row.coverage = rc.selectionCoverage;
        row.dynThumb = rc.dynThumbFraction;

        sim::Variant ideal;
        ideal.transform = sim::Transform::CritIcIdeal;
        row.ideal = exp.speedup(exp.run(ideal));

        // Cycles bought back, as a fraction of *baseline* cycles, so
        // savings are additive with the speedup.
        const auto baseCyc = static_cast<double>(base.cpu.cycles);
        row.dStallI = (static_cast<double>(base.cpu.stallForIIcache +
                                           base.cpu.stallForIRedirect) -
                       static_cast<double>(rc.cpu.stallForIIcache +
                                           rc.cpu.stallForIRedirect)) /
                      baseCyc;
        row.dStallRd = (static_cast<double>(base.cpu.stallForRd) -
                        static_cast<double>(rc.cpu.stallForRd)) /
                       baseCyc;

        const auto &eb = base.energy;
        const auto &ec = rc.energy;
        const double socBase = eb.total();
        row.eIcache = (eb.icache - ec.icache) / socBase;
        row.eCpu = (eb.cpuCore + eb.dcache + eb.l2 - ec.cpuCore -
                    ec.dcache - ec.l2) /
                   socBase;
        row.eMem = (eb.memory() - ec.memory()) / socBase;
        row.eSoc = (socBase - ec.total()) / socBase;
        row.eCpuOnly = (eb.cpu() - ec.cpu()) / eb.cpu();
    });

    Table fig10a({"app", "Hoist", "CritIC", "CritIC.Ideal",
                  "coverage", "dyn 16-bit"});
    Table fig10b({"app", "dF.StallForI (producer)",
                  "dF.StallForR+D (consumer)"});
    Table fig10c({"app", "i-cache", "CPU", "memory", "SoC total",
                  "CPU-only"});
    std::vector<double> hoists, critics_, ideals;
    double dI = 0, dRd = 0, eIc = 0, eCpu = 0, eMem = 0, eSoc = 0,
           eCpuOnly = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        fig10a.addRow({apps[i].name, gainPct(row.hoist),
                       gainPct(row.critic), gainPct(row.ideal),
                       pct(row.coverage), pct(row.dynThumb)});
        fig10b.addRow({apps[i].name, pct(row.dStallI),
                       pct(row.dStallRd)});
        fig10c.addRow({apps[i].name, pct(row.eIcache), pct(row.eCpu),
                       pct(row.eMem), pct(row.eSoc),
                       pct(row.eCpuOnly)});
        hoists.push_back(row.hoist);
        critics_.push_back(row.critic);
        ideals.push_back(row.ideal);
        dI += row.dStallI;
        dRd += row.dStallRd;
        eIc += row.eIcache;
        eCpu += row.eCpu;
        eMem += row.eMem;
        eSoc += row.eSoc;
        eCpuOnly += row.eCpuOnly;
    }
    const auto n = static_cast<double>(rows.size());
    fig10a.addRow({"average", gainPct(geoMean(hoists)),
                   gainPct(geoMean(critics_)), gainPct(geoMean(ideals)),
                   "", ""});
    fig10b.addRow({"average", pct(dI / n), pct(dRd / n)});
    fig10c.addRow({"average", pct(eIc / n), pct(eCpu / n),
                   pct(eMem / n), pct(eSoc / n), pct(eCpuOnly / n)});

    std::printf("Fig. 10a — CPU speedup over baseline\n%s\n",
                fig10a.render().c_str());
    std::printf("Fig. 10b — fetch-stall savings "
                "(baseline minus CritIC, fraction of cycles)\n%s\n",
                fig10b.render().c_str());
    std::printf("Fig. 10c — energy savings by component "
                "(fraction of baseline SoC energy; CPU-only relative "
                "to CPU energy)\n%s\n",
                fig10c.render().c_str());
    return 0;
}
