#!/usr/bin/env bash
# End-to-end smoke test of the observability layer (src/obs/): run a
# grid through the serve daemon with --trace-out and a per-worker
# --profile-dir, poll the live `top` monitor, SIGTERM-drain, then
# validate the artifacts with scripts/check_trace.py — the merged
# Chrome trace must hold job/stage spans stitched from at least two
# worker processes under one trace id, and every worker profile must
# be schema-clean with most samples attributed to named pipeline
# stages.  Finally a quick `bench` run must show the analyze stage no
# longer 2x-dominant over emit per instruction — the flat analyze
# rework retired the profiler's first target.
#
# Usage: scripts/obs_smoke.sh   (after cmake --build build)
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${CRITICS_CLI:-build/examples/critics_cli}"
[ -x "$CLI" ] || { echo "build $CLI first (cmake --build build)"; exit 1; }
case "$CLI" in /*) ;; *) CLI="$PWD/$CLI" ;; esac

PYTHON="${PYTHON:-python3}"
CHECK="scripts/check_trace.py"

APPS="Acrobat,Office,Browser"
VARIANTS="baseline,critic"
INSTS=100000
JOBS=6 # |apps| x |variants|

WORK="$(mktemp -d "${TMPDIR:-/tmp}/critics-obs-smoke.XXXXXX")"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

PORT_FILE="$WORK/port"
STORE="$WORK/cache/results.jsonl"
TRACE="$WORK/serve_trace.json"
PROFILES="$WORK/profiles"

"$CLI" serve --port 0 --port-file "$PORT_FILE" --workers 2 \
    --cache-file "$STORE" --trace-out "$TRACE" \
    --profile-dir "$PROFILES" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "daemon died on startup:"; cat "$WORK/serve.log"; exit 1
    }
    sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "daemon never published its port"; exit 1; }
echo "daemon up on port $(cat "$PORT_FILE")"

# ---- 1. A traced, profiled batch through two workers -----------------
"$CLI" submit --port-file "$PORT_FILE" --apps "$APPS" \
    --variants "$VARIANTS" --insts "$INSTS" \
    --batch obs-smoke >"$WORK/wait.log"
grep -q '"state":"done"' "$WORK/wait.log"
grep -q '"failed":0' "$WORK/wait.log"
[ "$(grep -c '"event":"job"' "$WORK/wait.log")" -eq "$JOBS" ]
echo "batch done ($JOBS/$JOBS jobs ok)"

# ---- 2. The live monitor sees the daemon's state ---------------------
"$CLI" top --port-file "$PORT_FILE" --once >"$WORK/top.log"
grep -q 'job latency' "$WORK/top.log"
grep -q 'simulated' "$WORK/top.log"
echo "top --once rendered a panel"

# ---- 3. Drain; artifacts are written on shutdown ---------------------
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
grep -q "drained; 0 warm hit(s), $JOBS simulated, 0 failed" \
    "$WORK/serve.log"
echo "daemon drained cleanly"

# ---- 4. The merged trace is stitched, tagged and re-based ------------
"$PYTHON" "$CHECK" trace "$TRACE" --min-worker-pids 2

# ---- 5. Every worker profile is schema-clean and well-attributed -----
PROFILE_COUNT=0
for prof in "$PROFILES"/*.json; do
    [ -e "$prof" ] || break
    "$PYTHON" "$CHECK" profile "$prof" --min-attributed 0.7
    PROFILE_COUNT=$((PROFILE_COUNT + 1))
done
[ "$PROFILE_COUNT" -ge 2 ] || {
    echo "expected >= 2 worker profiles, found $PROFILE_COUNT"; exit 1
}
"$CLI" prof report "$(ls "$PROFILES"/*.json | head -1)" \
    >"$WORK/prof_report.log"
grep -q 'attributed to pipeline stages' "$WORK/prof_report.log"
echo "$PROFILE_COUNT worker profile(s) validated"

# ---- 6. The batch manifest carries the trace id ----------------------
MANIFEST="$(ls "$WORK"/cache/manifests/obs-smoke.*.json | head -1)"
grep -q '"traceId"' "$MANIFEST"
grep -q '"jobs"' "$MANIFEST"
echo "batch manifest written: $MANIFEST"

# ---- 7. bench: analyze no longer 2x-dominant over emit ---------------
# Pre-overhaul, analyze cost ~6x emit per instruction and step 7 gated
# on `--dominant analyze:emit`.  The flat analyze path brought it under
# 2x, so the gate now points the other way — by median stage rates
# (reps are medianed; profiler sample counts are too small to be
# stable at smoke sizes).  300k insts so per-call setup costs amortize
# the way the paper-scale sweeps see them.
"$CLI" bench --quick --reps 5 --insts 300000 --label obs-smoke \
    --out "$WORK/bench.json" \
    --profile "$WORK/bench_prof.json" >"$WORK/bench.log"
"$PYTHON" "$CHECK" profile "$WORK/bench_prof.json" --min-attributed 0.9
"$PYTHON" "$CHECK" bench "$WORK/bench.json" --label obs-smoke \
    --max-slowdown analyze:emit:2.0
echo "obs smoke passed"
