#!/usr/bin/env bash
# Rebuild, test and regenerate every table/figure of the reproduction
# as one orchestrated run: every bench routes its sweeps through the
# critics::runner, so all batches share one result cache (a re-run
# performs zero new simulations) and one manifest directory.  The final
# `critics_cli report` pass fails the script if any batch recorded a
# failed job or was interrupted.
set -euo pipefail
cd "$(dirname "$0")/.."

# One cache for the whole reproduction; override to relocate it
# (e.g. CRITICS_CACHE_DIR=/tmp/scratch to force a cold run).
export CRITICS_CACHE_DIR="${CRITICS_CACHE_DIR:-$PWD/.critics-cache}"

cmake -B build
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

# Opt-in sharded pre-warm: CRITICS_SHARDS=N runs the headline
# (apps x variants) grid as N cooperating processes and merges their
# shard stores into the canonical cache, so the bench pass below is
# mostly cache hits.  The merge is digit-exact (hexfloat round-trip),
# so the figures are identical either way.
if [ "${CRITICS_SHARDS:-0}" -gt 1 ]; then
    scripts/run_sharded.sh -n "$CRITICS_SHARDS" -- \
        --apps Acrobat,Office,Maps,Email \
        --variants baseline,hoist,critic,critic-ideal \
        2>&1 | tee shard_output.txt
fi

{
    for b in build/bench/*; do
        [ -f "$b" ] && [ -x "$b" ] || continue
        case "$(basename "$b")" in micro_components) continue ;; esac
        echo "### $(basename "$b")"
        "$b"
    done
} 2>&1 | tee bench_output.txt

./build/bench/micro_components --benchmark_min_time=0.2 \
    2>&1 | tee micro_output.txt

# Gate on the run manifests: non-zero exit if any batch has a
# failed-job record (or was interrupted by SIGINT).
echo "### run manifests"
./build/examples/critics_cli report
