#!/usr/bin/env bash
# Rebuild, test and regenerate every table/figure of the reproduction.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
    for b in build/bench/*; do
        [ -f "$b" ] && [ -x "$b" ] || continue
        echo "### $(basename "$b")"
        "$b"
    done
} 2>&1 | tee bench_output.txt

./build/bench/micro_components --benchmark_min_time=0.2 \
    2>&1 | tee micro_output.txt
