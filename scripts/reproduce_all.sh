#!/usr/bin/env bash
# Rebuild, test and regenerate every table/figure of the reproduction
# as one orchestrated run: every bench routes its sweeps through the
# critics::runner, so all batches share one result cache (a re-run
# performs zero new simulations) and one manifest directory.  The final
# `critics_cli report` pass fails the script if any batch recorded a
# failed job or was interrupted.
set -euo pipefail
cd "$(dirname "$0")/.."

# One cache for the whole reproduction; override to relocate it
# (e.g. CRITICS_CACHE_DIR=/tmp/scratch to force a cold run).
export CRITICS_CACHE_DIR="${CRITICS_CACHE_DIR:-$PWD/.critics-cache}"

cmake -B build
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
    for b in build/bench/*; do
        [ -f "$b" ] && [ -x "$b" ] || continue
        case "$(basename "$b")" in micro_components) continue ;; esac
        echo "### $(basename "$b")"
        "$b"
    done
} 2>&1 | tee bench_output.txt

./build/bench/micro_components --benchmark_min_time=0.2 \
    2>&1 | tee micro_output.txt

# Gate on the run manifests: non-zero exit if any batch has a
# failed-job record (or was interrupted by SIGINT).
echo "### run manifests"
./build/examples/critics_cli report
