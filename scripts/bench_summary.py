#!/usr/bin/env python3
"""Render a per-stage bench delta as a Markdown table.

Usage: bench_summary.py <new-bench.json> <baseline-bench.json>

Compares the newest measurement in the first `critics_cli bench --out`
file against the newest one in the second (normally the committed
BENCH_sim.json) and prints a GitHub-flavoured Markdown table of
median insts/s per stage with the speedup factor.  CI appends the
output to $GITHUB_STEP_SUMMARY so the analyze-stage delta — the
number the analyze overhaul is tracked by — is visible per run
without downloading artifacts.  Stdlib only, exit 0 unless a file is
unreadable (shared runners are too noisy to gate on throughput).
"""

import json
import sys


def last_measurement(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    measurements = doc.get("measurements") or []
    if not measurements:
        raise ValueError(f"{path}: no measurements")
    return measurements[-1]


def rate(entry, stage):
    value = ((entry.get("stages") or {}).get(stage) or {}).get(
        "medianInstsPerSec")
    return value if isinstance(value, (int, float)) and value > 0 else None


def human(value):
    return f"{value / 1e6:.2f}M" if value else "-"


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip().splitlines()[2])
        return 2
    try:
        new = last_measurement(sys.argv[1])
        base = last_measurement(sys.argv[2])
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_summary: {e}")
        return 1

    print(f"### Bench stages: `{new.get('label', '?')}` vs "
          f"`{base.get('label', '?')}` (git {base.get('git', '?')})")
    print()
    print("| stage | median insts/s | baseline | factor |")
    print("|---|---|---|---|")
    stages = list((new.get("stages") or {}).keys())
    for stage in stages:
        n, b = rate(new, stage), rate(base, stage)
        factor = f"{n / b:.2f}x" if n and b else "-"
        mark = " ⚠" if stage == "analyze" and n and b and n < b else ""
        print(f"| {stage} | {human(n)} | {human(b)} | {factor}{mark} |")
    print()
    print("_Informational: shared runners are too noisy to gate on "
          "throughput; the committed baseline was measured on a quiet "
          "box._")
    return 0


if __name__ == "__main__":
    sys.exit(main())
