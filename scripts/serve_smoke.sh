#!/usr/bin/env bash
# End-to-end smoke test of the serve daemon (src/serve/): start it on
# an ephemeral port, run a cold batch through forked workers with one
# worker kill -9'd mid-batch (the supervisor must restart it and the
# batch must still finish clean), resubmit the identical batch and
# demand it is answered entirely from the warm store (zero new
# simulations), SIGTERM-drain the daemon, and finally diff the served
# result store bit-for-bit against a direct `critics_cli run` of the
# same grid — the service layer must be invisible in the numbers.
#
# Usage: scripts/serve_smoke.sh   (after cmake --build build)
set -euo pipefail
cd "$(dirname "$0")/.."

CLI="${CRITICS_CLI:-build/examples/critics_cli}"
[ -x "$CLI" ] || { echo "build $CLI first (cmake --build build)"; exit 1; }
case "$CLI" in /*) ;; *) CLI="$PWD/$CLI" ;; esac
# absolute path: worker cmdlines are matched on this prefix

APPS="Acrobat,Office"
VARIANTS="baseline,critic"
INSTS=50000
JOBS=4 # |apps| x |variants|

WORK="$(mktemp -d "${TMPDIR:-/tmp}/critics-serve-smoke.XXXXXX")"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

PORT_FILE="$WORK/port"
STORE="$WORK/cache/results.jsonl"

"$CLI" serve --port 0 --port-file "$PORT_FILE" --workers 2 \
    --cache-file "$STORE" --stats-out "$WORK/serve_stats.json" \
    --trace-out "$WORK/serve_trace.json" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "daemon died on startup:"; cat "$WORK/serve.log"; exit 1
    }
    sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "daemon never published its port"; exit 1; }
echo "daemon up on port $(cat "$PORT_FILE")"

# ---- 1. Cold batch, with a worker murdered mid-flight ----------------
# --sleep-ms slows each simulated job so a worker is reliably alive to
# kill; the supervisor must respawn it and the respawn must warm-replay
# its shard store, so the batch still completes with zero failures.
"$CLI" submit --port-file "$PORT_FILE" --apps "$APPS" \
    --variants "$VARIANTS" --insts "$INSTS" --sleep-ms 1500 \
    --batch smoke --no-wait >"$WORK/submit1.json"
cat "$WORK/submit1.json"
JOB="$(sed -n 's/.*"job":"\([^"]*\)".*/\1/p' "$WORK/submit1.json")"
[ -n "$JOB" ] || { echo "submit returned no job id"; exit 1; }

# Anchor the pattern on the absolute binary path so pgrep can only
# match real serve-worker processes, never this script's own cmdline.
VICTIM=""
for _ in $(seq 1 100); do
    VICTIM="$(pgrep -f "^$CLI serve-worker" | head -1 || true)"
    [ -n "$VICTIM" ] && break
    sleep 0.1
done
[ -n "$VICTIM" ] || { echo "no serve-worker appeared to kill"; exit 1; }
kill -9 "$VICTIM"
echo "killed worker $VICTIM mid-batch"

"$CLI" wait "$JOB" --port-file "$PORT_FILE" >"$WORK/wait1.log"
grep -q '"state":"done"' "$WORK/wait1.log"
grep -q '"failed":0' "$WORK/wait1.log"
[ "$(grep -c '"event":"job"' "$WORK/wait1.log")" -eq "$JOBS" ]
echo "cold batch survived the worker kill ($JOBS/$JOBS jobs ok)"

# ---- 2. Warm resubmit: answered from the store, nothing simulated ---
"$CLI" submit --port-file "$PORT_FILE" --apps "$APPS" \
    --variants "$VARIANTS" --insts "$INSTS" \
    --batch smoke-warm >"$WORK/submit2.log"
grep -q "\"warm\":$JOBS" "$WORK/submit2.log"
grep -q '"cold":0' "$WORK/submit2.log"
grep -q '"simulated":0' "$WORK/submit2.log"
[ "$(grep -c '"from-cache":true' "$WORK/submit2.log")" -eq "$JOBS" ]
echo "warm resubmit served $JOBS/$JOBS jobs from the store"

# ---- 3. SIGTERM drain ------------------------------------------------
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
# The drain summary proves the daemon's own accounting: every job
# warm-hit once, simulated once, zero failures, and the kill above
# really cost (at least) one worker restart.
grep -q "drained; $JOBS warm hit(s), $JOBS simulated, 0 failed" \
    "$WORK/serve.log"
grep -Eq '[1-9][0-9]* worker restart' "$WORK/serve.log"
# And the serve.* registry agrees: the warm pass simulated zero jobs.
grep -q "\"warmHits\":$JOBS" "$WORK/serve_stats.json"
grep -q "\"simulated\":$JOBS" "$WORK/serve_stats.json"
grep -q '"failedJobs":0' "$WORK/serve_stats.json"
echo "daemon drained cleanly"

# ---- 4. Served results == direct results, digit for digit -----------
export CRITICS_CACHE_DIR="$WORK/direct"
"$CLI" run --apps "$APPS" --variants "$VARIANTS" --insts "$INSTS" \
    --batch direct >/dev/null
"$CLI" diff --rel 0 --abs 0 "$STORE" "$CRITICS_CACHE_DIR/results.jsonl"
echo "serve smoke passed: served store is bit-exact vs a direct run"
