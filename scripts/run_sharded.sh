#!/usr/bin/env bash
# Run one critics_cli batch as N cooperating processes: each shard
# owns a deterministic, disjoint slice of the (apps x variants) grid
# (partitioned by job content hash — see src/runner/shard.hh), writes
# its own results.shard-K-of-N.jsonl store plus a per-shard manifest,
# and the shard stores are merged into one canonical store at the end.
# The merged store reproduces a single-process run digit for digit, so
# an optional --check pass runs the same batch unsharded and diffs the
# two stores, failing on any drift.
#
# Usage:
#   scripts/run_sharded.sh [-n SHARDS] [-o MERGED.jsonl] [--check] \
#       [critics_cli run args...]
#
# Examples:
#   scripts/run_sharded.sh -n 4 -- --apps Acrobat,Office \
#       --variants baseline,critic
#   scripts/run_sharded.sh -n 2 --check   # tiny default grid + verify
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=build/examples/critics_cli
SHARDS=2
MERGED=""
CHECK=0
RUN_ARGS=()

while [ $# -gt 0 ]; do
    case "$1" in
        -n) SHARDS="$2"; shift 2 ;;
        -o) MERGED="$2"; shift 2 ;;
        --check) CHECK=1; shift ;;
        --) shift; RUN_ARGS=("$@"); break ;;
        *) RUN_ARGS+=("$1"); shift ;;
    esac
done
if [ ${#RUN_ARGS[@]} -eq 0 ]; then
    RUN_ARGS=(--apps Acrobat,Office --variants baseline,critic)
fi
[ -x "$CLI" ] || { echo "build $CLI first (cmake --build build)"; exit 1; }

CACHE_DIR="${CRITICS_CACHE_DIR:-$PWD/.critics-cache}"
export CRITICS_CACHE_DIR="$CACHE_DIR"
MERGED="${MERGED:-$CACHE_DIR/results.jsonl}"
mkdir -p "$CACHE_DIR"

# Launch the shards.  Each process computes the same partition and
# keeps only its own slice, so the stores are disjoint by design.
pids=()
stores=()
for k in $(seq 1 "$SHARDS"); do
    store="$CACHE_DIR/results.shard-$k-of-$SHARDS.jsonl"
    rm -f "$store"
    stores+=("$store")
    "$CLI" run "${RUN_ARGS[@]}" --shard "$k/$SHARDS" &
    pids+=($!)
done
status=0
for pid in "${pids[@]}"; do
    wait "$pid" || status=$?
done
[ "$status" -eq 0 ] || { echo "a shard failed (exit $status)"; exit "$status"; }

# Fold the shard stores into the canonical store.  Stores for shards
# that owned zero jobs may not exist; merge skips them.
"$CLI" cache merge "$MERGED" "${stores[@]}"

if [ "$CHECK" -eq 1 ]; then
    # Re-run unsharded into a scratch store (all jobs hit the
    # simulator again) and demand zero drift against the merge.
    REF="$CACHE_DIR/results.unsharded-check.jsonl"
    rm -f "$REF"
    "$CLI" run "${RUN_ARGS[@]}" --cache-file "$REF"
    "$CLI" diff "$REF" "$MERGED"
    echo "sharded run matches unsharded run"
fi
