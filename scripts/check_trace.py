#!/usr/bin/env python3
"""Validate critics observability artifacts in CI.

Two modes:

  check_trace.py trace <chrome-trace.json> [--min-worker-pids N]
                 [--trace-id ID]
      A merged daemon trace (serve --trace-out) must be well-formed
      Chrome Trace Event JSON, hold job/stage spans stitched from at
      least N distinct worker pids, tag every stitched span with one
      shared trace id, and keep the re-based worker timestamps inside
      the server's own batch span window (an unstitched absolute
      CLOCK_MONOTONIC timestamp lands far outside it).

  check_trace.py profile <profile.json> [--min-attributed F]
                 [--min-samples N] [--dominant A:B]
      A --profile report must carry the critics-profile-v1 schema,
      attribute at least fraction F of its samples to named pipeline
      stages, and (with --dominant) show stage A with at least twice
      the samples of stage B.

  check_trace.py bench <bench.json> [--label L]
                 [--max-slowdown A:B:R]
      The newest measurement in a `critics_cli bench --out` file
      (newest with label L if given) must show stage A costing at most
      R times stage B per instruction, judged by medianInstsPerSec —
      medians over reps, not profiler samples, so the check is stable
      at smoke-test sizes.

Exit 0 when every check passes; 1 with one line per failure otherwise.
Stdlib only.
"""

import argparse
import json
import sys

SPAN_CATEGORIES = {"job", "stage"}
# Slack around the batch window: scheduling between the server stamping
# the batch span and a worker stamping its first span.
WINDOW_SLACK_US = 10_000_000


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    return 1


def load_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def check_trace(args):
    errors = 0
    try:
        doc = load_json(args.file)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.file}: unreadable trace: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(f"{args.file}: no traceEvents array")

    spans = []  # (pid, tid, ts, dur, cat, name, trace_id)
    batch_windows = []  # (start, end) of server-side batch spans
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            errors += fail(f"event #{i} is not an object")
            continue
        ph = e.get("ph")
        if ph not in ("X", "i", "C", "M"):
            errors += fail(f"event #{i}: unknown phase {ph!r}")
            continue
        if ph != "X":
            continue
        name = e.get("name", "")
        ts, dur = e.get("ts"), e.get("dur")
        pid, tid = e.get("pid"), e.get("tid")
        for key, value in (("ts", ts), ("dur", dur), ("pid", pid),
                           ("tid", tid)):
            if not isinstance(value, (int, float)) or value < 0:
                errors += fail(
                    f"span {name!r} (#{i}): bad {key}={value!r}")
                break
        else:
            cat = e.get("cat", "")
            trace_id = (e.get("args") or {}).get("trace")
            if name.startswith("batch "):
                batch_windows.append((ts, ts + dur))
            if cat in SPAN_CATEGORIES:
                spans.append((pid, tid, ts, dur, cat, name, trace_id))

    if not spans:
        return errors + fail("no job/stage spans in the trace")

    # One trace id across every stitched span.
    ids = {s[6] for s in spans}
    if None in ids:
        untagged = sum(1 for s in spans if s[6] is None)
        errors += fail(f"{untagged} job/stage span(s) carry no trace id")
        ids.discard(None)
    if len(ids) > 1 and args.trace_id is None:
        errors += fail(f"multiple trace ids in one trace: {sorted(ids)}")
    if args.trace_id is not None and ids != {args.trace_id}:
        errors += fail(
            f"expected trace id {args.trace_id!r}, found {sorted(ids)}")

    # Spans from enough distinct worker processes (pid 0 is the server).
    worker_pids = {s[0] for s in spans if s[0] != 0}
    if len(worker_pids) < args.min_worker_pids:
        errors += fail(
            f"job/stage spans from {len(worker_pids)} worker pid(s), "
            f"need >= {args.min_worker_pids}")

    # Re-based timestamps: every stitched span must fall inside a
    # server batch window (give or take scheduling slack).  A raw
    # CLOCK_MONOTONIC timestamp that skipped re-basing is hours out.
    if batch_windows:
        lo = min(w[0] for w in batch_windows) - WINDOW_SLACK_US
        hi = max(w[1] for w in batch_windows) + WINDOW_SLACK_US
        for pid, tid, ts, dur, cat, name, _ in spans:
            if ts < max(lo, 0) or ts + dur > hi:
                errors += fail(
                    f"span {name!r} (pid {pid}) at ts={ts} dur={dur} "
                    f"lies outside the batch window [{lo}, {hi}] — "
                    "unstitched timestamp?")
    else:
        errors += fail("no server-side 'batch <id>' span to anchor "
                       "the timeline")

    # Per worker track, spans are appended in completion order, so end
    # times must never step backwards.
    by_track = {}
    for pid, tid, ts, dur, _, name, _ in spans:
        if pid == 0:
            continue  # server track interleaves many threads
        last = by_track.get((pid, tid))
        end = ts + dur
        if last is not None and end < last:
            errors += fail(
                f"track pid={pid} tid={tid}: span {name!r} ends at "
                f"{end} before the previous span's end {last} — "
                "non-monotonic stitching")
        by_track[(pid, tid)] = end

    if errors == 0:
        print(f"check_trace: OK: {len(spans)} stitched span(s) from "
              f"{len(worker_pids)} worker pid(s), trace id "
              f"{sorted(ids)[0] if ids else '-'}")
    return errors


def check_profile(args):
    errors = 0
    try:
        doc = load_json(args.file)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.file}: unreadable profile: {e}")

    if doc.get("schema") != "critics-profile-v1":
        return fail(
            f"{args.file}: schema {doc.get('schema')!r}, expected "
            "'critics-profile-v1'")

    samples = doc.get("samples")
    if not isinstance(samples, int) or samples < args.min_samples:
        errors += fail(
            f"{args.file}: {samples!r} sample(s), need >= "
            f"{args.min_samples}")

    stages = doc.get("stages")
    if not isinstance(stages, dict) or not stages:
        return errors + fail(f"{args.file}: no stages object")
    for stage, count in stages.items():
        if not isinstance(count, int) or count < 0:
            errors += fail(
                f"{args.file}: stage {stage!r} has bad count "
                f"{count!r}")
    if isinstance(samples, int) and sum(
            c for c in stages.values() if isinstance(c, int)) != samples:
        errors += fail(f"{args.file}: stage counts do not sum to "
                       f"{samples} samples")

    attributed = doc.get("attributedFraction")
    if not isinstance(attributed, (int, float)):
        errors += fail(f"{args.file}: no attributedFraction")
    elif attributed < args.min_attributed:
        errors += fail(
            f"{args.file}: attributedFraction {attributed:.3f} < "
            f"{args.min_attributed}")

    flat = doc.get("flat")
    if not isinstance(flat, list) or (samples and not flat):
        errors += fail(f"{args.file}: empty flat profile")

    if args.dominant:
        a, _, b = args.dominant.partition(":")
        ca, cb = stages.get(a, 0), stages.get(b, 0)
        if ca < 2 * cb or ca == 0:
            errors += fail(
                f"{args.file}: stage {a!r} ({ca} samples) is not "
                f"visibly dominant over {b!r} ({cb} samples)")

    if errors == 0:
        print(f"check_trace: OK: {samples} sample(s), "
              f"{attributed:.1%} attributed to named stages")
    return errors


def check_bench(args):
    errors = 0
    try:
        doc = load_json(args.file)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.file}: unreadable bench file: {e}")

    measurements = doc.get("measurements")
    if not isinstance(measurements, list) or not measurements:
        return fail(f"{args.file}: no measurements array")
    if args.label is not None:
        measurements = [m for m in measurements
                        if isinstance(m, dict)
                        and m.get("label") == args.label]
        if not measurements:
            return fail(
                f"{args.file}: no measurement labelled {args.label!r}")
    entry = measurements[-1]
    stages = entry.get("stages")
    if not isinstance(stages, dict) or not stages:
        return fail(f"{args.file}: newest measurement has no stages")

    rates = {}
    for stage, data in stages.items():
        rate = (data or {}).get("medianInstsPerSec")
        if not isinstance(rate, (int, float)) or rate <= 0:
            errors += fail(
                f"{args.file}: stage {stage!r} has bad "
                f"medianInstsPerSec {rate!r}")
        else:
            rates[stage] = rate

    if args.max_slowdown:
        parts = args.max_slowdown.split(":")
        if len(parts) != 3:
            return errors + fail(
                f"--max-slowdown {args.max_slowdown!r}: want A:B:R")
        a, b, limit = parts[0], parts[1], float(parts[2])
        if a not in rates or b not in rates:
            return errors + fail(
                f"{args.file}: stages {a!r}/{b!r} not both measured "
                f"(have {sorted(rates)})")
        # Per-instruction cost ratio: stage A is rates[b]/rates[a]
        # times slower than stage B.
        slowdown = rates[b] / rates[a]
        if slowdown > limit:
            errors += fail(
                f"{args.file}: stage {a!r} is {slowdown:.2f}x slower "
                f"than {b!r} per instruction, limit {limit}x "
                f"({a}={rates[a]:.3g}/s, {b}={rates[b]:.3g}/s)")
        elif errors == 0:
            print(
                f"check_trace: OK: {a} costs {slowdown:.2f}x {b} "
                f"per instruction (limit {limit}x, label "
                f"{entry.get('label', '-')!r})")
            return 0

    if errors == 0:
        print(f"check_trace: OK: {len(rates)} stage rate(s) in "
              f"measurement {entry.get('label', '-')!r}")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    trace = sub.add_parser("trace")
    trace.add_argument("file")
    trace.add_argument("--min-worker-pids", type=int, default=2)
    trace.add_argument("--trace-id", default=None)

    profile = sub.add_parser("profile")
    profile.add_argument("file")
    profile.add_argument("--min-attributed", type=float, default=0.0)
    profile.add_argument("--min-samples", type=int, default=1)
    profile.add_argument("--dominant", default=None,
                         metavar="STAGE_A:STAGE_B")

    bench = sub.add_parser("bench")
    bench.add_argument("file")
    bench.add_argument("--label", default=None)
    bench.add_argument("--max-slowdown", default=None,
                       metavar="STAGE_A:STAGE_B:RATIO")

    args = parser.parse_args()
    if args.mode == "trace":
        sys.exit(1 if check_trace(args) else 0)
    if args.mode == "bench":
        sys.exit(1 if check_bench(args) else 0)
    sys.exit(1 if check_profile(args) else 0)


if __name__ == "__main__":
    main()
